//! A lightweight HIR on top of the token stream: function items with
//! signatures, and per-function body *events* (calls, `let` bindings,
//! returns) in source order.
//!
//! This is deliberately not a full Rust parser. It recovers exactly the
//! structure the interprocedural analyses need:
//!
//! * every `fn` item with its name, enclosing `impl` type, parameter
//!   names/types, return type, and test-ness (`#[test]` / `#[cfg(test)]`);
//! * the linear sequence of call expressions inside each body, with
//!   receiver hints, path qualifiers, and argument token ranges;
//! * `let` bindings and `return` expressions as token ranges, for the
//!   taint analysis;
//! * `// pmlint:` annotations attached to items and statements
//!   (`flush-helper`, `caller-flushes`, `publish(<label>)`).
//!
//! Macro invocations are treated as opaque (their interior produces no
//! events), and nested `fn` items are excluded from the enclosing body.

use std::collections::HashMap;

use crate::lexer::{lex, Tok, TokKind};

/// Token range `[start, end)` into a [`HirFn`]'s token slice.
pub type Span = (usize, usize);

/// One parsed parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`""` for pattern parameters we don't resolve).
    pub name: String,
    /// Type text, tokens joined with spaces.
    pub ty: String,
}

/// One call expression, in body order.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Method or function name (last path segment).
    pub name: String,
    /// Path qualifier segments before the name (e.g. `["ptr"]` for
    /// `ptr::write`, `["NvTable"]` for `NvTable::open`).
    pub qualifiers: Vec<String>,
    /// Immediate receiver identifier for simple method calls
    /// (`region.flush(..)` → `Some("region")`); `None` for free calls or
    /// complex receivers.
    pub recv: Option<String>,
    /// Argument token ranges (top-level comma split).
    pub args: Vec<Span>,
    /// 1-based source position of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// `// pmlint: publish(<label>)` annotation on this call's line (or
    /// the comment block directly above it).
    pub publish_label: Option<String>,
    /// `// pmlint: observe(<label>)` annotation — this call reads a
    /// publish word on the observation side (acquire load expected).
    pub observe_label: Option<String>,
    /// Token index of the callee name (for taint bookkeeping).
    pub tok_idx: usize,
}

/// One `let` binding.
#[derive(Debug, Clone)]
pub struct LetEvent {
    /// Lower-case binding names found in the pattern.
    pub names: Vec<String>,
    /// Initializer token range (empty for `let x;`).
    pub expr: Span,
}

/// One `return` expression (or the body's tail expression).
#[derive(Debug, Clone)]
pub struct ReturnEvent {
    /// Returned expression token range.
    pub expr: Span,
}

/// A body event, ordered by source position.
#[derive(Debug, Clone)]
pub enum Event {
    /// Call expression.
    Call(CallEvent),
    /// `let` binding (anchored at the end of its initializer, so calls
    /// inside the initializer are processed first).
    Let(LetEvent),
    /// `return` / tail expression.
    Return(ReturnEvent),
}

/// One function item.
#[derive(Debug, Clone)]
pub struct HirFn {
    /// Index into [`HirProgram::fns`].
    pub id: usize,
    /// Crate directory name (`nvm`, `storage`, …) or `""` outside
    /// `crates/`.
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when any (`impl NvTable { fn open … }` →
    /// `Some("NvTable")`).
    pub impl_type: Option<String>,
    /// Parsed parameters (excluding `self`).
    pub params: Vec<Param>,
    /// Whether the signature has a `self` receiver.
    pub has_self: bool,
    /// Return type text (`""` when the fn returns unit).
    pub ret: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Annotated `// pmlint: flush-helper`.
    pub flush_helper: bool,
    /// Annotated `// pmlint: caller-flushes` — the fn's contract is to
    /// leave stores unflushed for the caller to batch.
    pub caller_flushes: bool,
    /// Annotated `// pmlint: lock-held-persist(<reason>)` — the fn
    /// deliberately persists while holding a lock (an atomic multi-step
    /// protocol), exempting it from the `lock-held-persist` rule.
    pub lock_held_persist: bool,
    /// Annotated `// pmlint: read-path` — a root of the read-path purity
    /// gate: everything reachable from it must issue no persistence
    /// primitive and acquire no lock (rule `read-path-purity`).
    pub read_path: bool,
    /// Annotated `// pmlint: read-pure` — a leaf the purity gate trusts:
    /// the fn models a plain load on real hardware (simulated-region read
    /// accessors whose internal bookkeeping locks are simulator artefacts),
    /// so the walk does not descend into it.
    pub read_pure: bool,
    /// Body tokens (shared slice of the file's tokens).
    pub tokens: Vec<Tok>,
    /// Body events, in execution-ish order.
    pub events: Vec<Event>,
}

/// All functions recovered from a set of source files.
#[derive(Debug, Default)]
pub struct HirProgram {
    /// Every parsed function.
    pub fns: Vec<HirFn>,
}

/// Crate directory name from a workspace-relative path
/// (`crates/nvm/src/pvec.rs` → `nvm`).
pub fn crate_of(path: &str) -> String {
    let mut it = path.split('/');
    if it.next() == Some("crates") {
        if let Some(c) = it.next() {
            return c.to_owned();
        }
    }
    String::new()
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "let", "fn", "move", "in", "as", "else",
    "unsafe", "ref", "mut", "pub", "where", "impl", "dyn",
];

/// Parse every function item in `source`.
pub fn parse_file(path: &str, source: &str) -> Vec<HirFn> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let krate = crate_of(path);

    // --- phase 1: item discovery with a scope walker --------------------
    struct RawFn {
        name: String,
        impl_type: Option<String>,
        line: u32,
        col: u32,
        is_test: bool,
        flush_helper: bool,
        caller_flushes: bool,
        lock_held_persist: bool,
        read_path: bool,
        read_pure: bool,
        sig_start: usize,
        body: Option<Span>,
    }

    #[derive(Clone)]
    struct Scope {
        test: bool,
        impl_type: Option<String>,
    }

    let mut raw: Vec<RawFn> = Vec::new();
    let mut scopes: Vec<Scope> = vec![Scope {
        test: false,
        impl_type: None,
    }];
    // Pending scope opened by the *next* `{`.
    let mut pending: Option<Scope> = None;
    let mut pending_fn: Option<usize> = None; // raw index awaiting its body
    let mut attr_test = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Attributes `#[...]` / `#![...]`.
        if t.is_punct('#') {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct('!') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let mut depth = 0usize;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Ident if toks[j].text == "test" => attr_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        match t.kind {
            TokKind::Punct('{') => {
                let cur = scopes.last().cloned().unwrap();
                let next = pending.take().unwrap_or(cur);
                if let Some(fi) = pending_fn.take() {
                    raw[fi].body = Some((i + 1, matching_brace(toks, i)));
                }
                scopes.push(next);
            }
            TokKind::Punct('}') if scopes.len() > 1 => {
                scopes.pop();
            }
            TokKind::Punct(';') => {
                pending = None;
                pending_fn = None;
                attr_test = false;
            }
            TokKind::Ident => {
                let cur = scopes.last().cloned().unwrap();
                match t.text.as_str() {
                    "fn" => {
                        if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                            raw.push(RawFn {
                                name: name.text.clone(),
                                impl_type: cur.impl_type.clone(),
                                line: t.line,
                                col: t.col,
                                is_test: cur.test || attr_test,
                                flush_helper: has_annotation(
                                    &lexed.comments,
                                    t.line,
                                    "pmlint: flush-helper",
                                ),
                                caller_flushes: has_annotation(
                                    &lexed.comments,
                                    t.line,
                                    "pmlint: caller-flushes",
                                ),
                                lock_held_persist: has_annotation(
                                    &lexed.comments,
                                    t.line,
                                    "pmlint: lock-held-persist(",
                                ),
                                read_path: has_annotation(
                                    &lexed.comments,
                                    t.line,
                                    "pmlint: read-path",
                                ),
                                read_pure: has_annotation(
                                    &lexed.comments,
                                    t.line,
                                    "pmlint: read-pure",
                                ),
                                sig_start: i,
                                body: None,
                            });
                            pending_fn = Some(raw.len() - 1);
                            pending = Some(Scope {
                                test: cur.test || attr_test,
                                impl_type: cur.impl_type,
                            });
                            attr_test = false;
                        }
                    }
                    "impl" => {
                        let ty = parse_impl_type(toks, i);
                        pending = Some(Scope {
                            test: cur.test || attr_test,
                            impl_type: ty,
                        });
                        attr_test = false;
                    }
                    "mod" | "trait" | "struct" | "enum" | "union" => {
                        pending = Some(Scope {
                            test: cur.test || attr_test,
                            impl_type: None,
                        });
                        attr_test = false;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }

    // --- phase 2: signatures + body events ------------------------------
    let bodies: Vec<Span> = raw.iter().filter_map(|r| r.body).collect();
    let mut fns = Vec::new();
    for r in raw {
        let Some(body) = r.body else {
            continue; // trait method declaration without a body
        };
        let (params, has_self, ret) = parse_signature(toks, r.sig_start, body.0);
        // Nested fn bodies strictly inside this one are skipped.
        let nested: Vec<Span> = bodies
            .iter()
            .copied()
            .filter(|&(s, e)| s > body.0 && e <= body.1 && (s, e) != body)
            .collect();
        let tokens: Vec<Tok> = toks[body.0..body.1].to_vec();
        let events = extract_events(
            &tokens,
            &nested
                .iter()
                .map(|&(s, e)| (s - body.0, e - body.0))
                .collect::<Vec<_>>(),
            &lexed.comments,
        );
        fns.push(HirFn {
            id: 0, // assigned by the program builder
            krate: krate.clone(),
            file: path.to_owned(),
            name: r.name,
            impl_type: r.impl_type,
            params,
            has_self,
            ret,
            line: r.line,
            col: r.col,
            is_test: r.is_test,
            flush_helper: r.flush_helper,
            caller_flushes: r.caller_flushes,
            lock_held_persist: r.lock_held_persist,
            read_path: r.read_path,
            read_pure: r.read_pure,
            tokens,
            events,
        });
    }
    fns
}

/// Build a program from `(path, source)` pairs, assigning fn ids.
pub fn build_program(files: &[(String, String)]) -> HirProgram {
    let mut prog = HirProgram::default();
    for (path, source) in files {
        for mut f in parse_file(path, source) {
            f.id = prog.fns.len();
            prog.fns.push(f);
        }
    }
    prog
}

/// Index of the `}` matching the `{` at `open` (or the end of the stream).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// For `impl [<…>] Path [for Path] {`, return the implementing type (the
/// last segment of the `for` path, or of the first path for inherent
/// impls).
fn parse_impl_type(toks: &[Tok], impl_idx: usize) -> Option<String> {
    let mut j = impl_idx + 1;
    j = skip_generics(toks, j);
    let (first, mut j2) = read_path_last_segment(toks, j)?;
    let mut ty = first;
    if toks.get(j2).is_some_and(|t| t.is_ident("for")) {
        j2 += 1;
        // `impl Trait for Type` — skip leading `&`/`mut`.
        while toks
            .get(j2)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            j2 += 1;
        }
        let (second, _) = read_path_last_segment(toks, j2)?;
        ty = second;
    }
    Some(ty)
}

/// Skip a balanced `<...>` group at `j` (token-level; `>` preceded by `-`
/// is an arrow, not a close).
fn skip_generics(toks: &[Tok], j: usize) -> usize {
    if !toks.get(j).is_some_and(|t| t.is_punct('<')) {
        return j;
    }
    let mut depth = 0usize;
    let mut k = j;
    while k < toks.len() {
        if toks[k].is_punct('<') {
            depth += 1;
        } else if toks[k].is_punct('>') && !(k >= 1 && toks[k - 1].is_punct('-')) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Read `Seg [::Seg]* [<…>]` starting at `j`; returns the last segment and
/// the index just past the path (generics skipped).
fn read_path_last_segment(toks: &[Tok], j: usize) -> Option<(String, usize)> {
    let first = toks.get(j)?;
    if first.kind != TokKind::Ident {
        return None;
    }
    let mut name = first.text.clone();
    let mut k = j + 1;
    k = skip_generics(toks, k);
    while toks.get(k).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
    {
        let seg = toks.get(k + 2)?;
        if seg.kind != TokKind::Ident {
            break;
        }
        name = seg.text.clone();
        k += 3;
        k = skip_generics(toks, k);
    }
    Some((name, k))
}

/// Parse the signature between `fn` at `sig_start` and the body `{` at
/// `body_open - 1`: parameters (excluding `self`) and return type.
fn parse_signature(toks: &[Tok], sig_start: usize, body_open: usize) -> (Vec<Param>, bool, String) {
    let mut j = sig_start + 2; // skip `fn name`
    j = skip_generics(toks, j);
    let mut params = Vec::new();
    let mut has_self = false;
    let mut ret = String::new();
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return (params, has_self, ret);
    }
    // Collect the parameter token range.
    let open = j;
    let mut depth = 0usize;
    let mut close = open;
    while close < toks.len() {
        if toks[close].is_punct('(') {
            depth += 1;
        } else if toks[close].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        close += 1;
    }
    // Split top-level commas inside (open+1 .. close).
    let mut start = open + 1;
    let mut d_par = 0i32;
    let mut d_ang = 0i32;
    let mut d_brk = 0i32;
    let mut pieces: Vec<(usize, usize)> = Vec::new();
    for k in open + 1..close {
        match toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('{') => d_par += 1,
            TokKind::Punct(')') | TokKind::Punct('}') => d_par -= 1,
            TokKind::Punct('[') => d_brk += 1,
            TokKind::Punct(']') => d_brk -= 1,
            TokKind::Punct('<') => d_ang += 1,
            TokKind::Punct('>') if !(k >= 1 && toks[k - 1].is_punct('-')) => {
                d_ang -= 1;
            }
            TokKind::Punct(',') if d_par == 0 && d_ang == 0 && d_brk == 0 => {
                pieces.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < close {
        pieces.push((start, close));
    }
    for (s, e) in pieces {
        let slice = &toks[s..e];
        if slice.iter().any(|t| t.is_ident("self")) && slice.len() <= 3 {
            has_self = true;
            continue;
        }
        // `name : Type` (skip `mut`; pattern parameters are unresolved).
        let mut name = String::new();
        let mut ty = String::new();
        let mut seen_colon = false;
        let mut pattern = false;
        for t in slice {
            if !seen_colon {
                if t.is_punct(':') {
                    seen_colon = true;
                } else if t.kind == TokKind::Ident && t.text != "mut" && name.is_empty() && !pattern
                {
                    name = t.text.clone();
                } else if t.is_punct('(') || t.is_punct('[') {
                    name.clear();
                    pattern = true;
                }
                continue;
            }
            match t.kind {
                TokKind::Ident | TokKind::Num => {
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&t.text);
                }
                TokKind::Punct(c) => ty.push(c),
                _ => {}
            }
        }
        params.push(Param { name, ty });
    }
    // Return type: after `)`, a `->` up to `{`/`where`.
    let mut k = close + 1;
    if toks.get(k).is_some_and(|t| t.is_punct('-'))
        && toks.get(k + 1).is_some_and(|t| t.is_punct('>'))
    {
        k += 2;
        while k < body_open.saturating_sub(1)
            && !toks[k].is_ident("where")
            && !toks[k].is_punct('{')
        {
            if !ret.is_empty() {
                ret.push(' ');
            }
            match toks[k].kind {
                TokKind::Ident | TokKind::Num => ret.push_str(&toks[k].text),
                TokKind::Punct(c) => {
                    ret.pop_if_space();
                    ret.push(c);
                }
                _ => {}
            }
            k += 1;
        }
    }
    (params, has_self, ret)
}

trait PopIfSpace {
    fn pop_if_space(&mut self);
}
impl PopIfSpace for String {
    fn pop_if_space(&mut self) {
        if self.ends_with(' ') {
            self.pop();
        }
    }
}

/// Extract body events from `tokens` (a fn body), skipping `nested` fn
/// body ranges and macro interiors.
fn extract_events(tokens: &[Tok], nested: &[Span], comments: &HashMap<u32, String>) -> Vec<Event> {
    // (anchor, order, event) — anchored events sorted at the end.
    let mut out: Vec<(usize, usize, Event)> = Vec::new();
    let mut used_annotations: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut used_observe_annotations: std::collections::HashSet<u32> =
        std::collections::HashSet::new();
    let mut order = 0usize;
    let n = tokens.len();
    let mut j = 0usize;
    while j < n {
        if let Some(&(_, e)) = nested.iter().find(|&&(s, e)| j >= s && j < e) {
            j = e;
            continue;
        }
        let t = &tokens[j];
        match t.kind {
            TokKind::Ident => {
                // Macro invocation: opaque.
                if tokens.get(j + 1).is_some_and(|t| t.is_punct('!'))
                    && tokens
                        .get(j + 2)
                        .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
                {
                    j = skip_balanced(tokens, j + 2);
                    continue;
                }
                if t.text == "let" {
                    let (ev, anchor) = parse_let(tokens, j);
                    if let Some(ev) = ev {
                        out.push((anchor, order, Event::Let(ev)));
                        order += 1;
                    }
                    j += 1;
                    continue;
                }
                if t.text == "return" {
                    let end = expr_end(tokens, j + 1);
                    out.push((
                        end,
                        order,
                        Event::Return(ReturnEvent { expr: (j + 1, end) }),
                    ));
                    order += 1;
                    j += 1;
                    continue;
                }
                // Statement-position assignment `name = expr;` — reuse
                // the Let event (a re-binding, for the taint analysis).
                if tokens.get(j + 1).is_some_and(|t| t.is_punct('='))
                    && !tokens.get(j + 2).is_some_and(|t| t.is_punct('='))
                    && !KEYWORDS_NOT_CALLS.contains(&t.text.as_str())
                    && (j == 0
                        || tokens[j - 1].is_punct(';')
                        || tokens[j - 1].is_punct('{')
                        || tokens[j - 1].is_punct('}'))
                {
                    let start = j + 2;
                    let end = let_expr_end(tokens, start);
                    out.push((
                        end,
                        order,
                        Event::Let(LetEvent {
                            names: vec![t.text.clone()],
                            expr: (start, end),
                        }),
                    ));
                    order += 1;
                    j += 2;
                    continue;
                }
                // Call expression: `name (` or turbofish `name ::< … > (`.
                let mut paren = None;
                if tokens.get(j + 1).is_some_and(|t| t.is_punct('(')) {
                    paren = Some(j + 1);
                } else if tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 3).is_some_and(|t| t.is_punct('<'))
                {
                    let g = skip_generics(tokens, j + 3);
                    if tokens.get(g).is_some_and(|t| t.is_punct('(')) {
                        paren = Some(g);
                    }
                }
                if let Some(paren) = paren.filter(|_| {
                    !(KEYWORDS_NOT_CALLS.contains(&t.text.as_str())
                        || (j >= 1 && tokens[j - 1].is_ident("fn")))
                }) {
                    let args = split_args(tokens, paren);
                    let (qualifiers, recv) = call_context(tokens, j);
                    // Each publish annotation binds to the first call
                    // after it only — not to every call within reach.
                    let publish_label = label_annotation(comments, t.line, "pmlint: publish(")
                        .filter(|(al, _)| used_annotations.insert(*al))
                        .map(|(_, label)| label);
                    let observe_label = label_annotation(comments, t.line, "pmlint: observe(")
                        .filter(|(al, _)| used_observe_annotations.insert(*al))
                        .map(|(_, label)| label);
                    // Anchor at the closing paren: argument sub-calls
                    // execute before the call itself.
                    let anchor = skip_balanced(tokens, paren) - 1;
                    out.push((
                        anchor,
                        order,
                        Event::Call(CallEvent {
                            name: t.text.clone(),
                            qualifiers,
                            recv,
                            args,
                            line: t.line,
                            col: t.col,
                            publish_label,
                            observe_label,
                            tok_idx: j,
                        }),
                    ));
                    order += 1;
                }
            }
            TokKind::Punct('#') => {
                // Statement-level attribute: skip its group.
                let mut k = j + 1;
                if tokens.get(k).is_some_and(|t| t.is_punct('!')) {
                    k += 1;
                }
                if tokens.get(k).is_some_and(|t| t.is_punct('[')) {
                    j = skip_balanced(tokens, k);
                    continue;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Tail expression: tokens after the last top-level `;` / `}` are the
    // body's return value.
    let mut depth = 0i32;
    let mut tail_start = 0usize;
    for (k, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    tail_start = k + 1;
                }
            }
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct(';') if depth == 0 => tail_start = k + 1,
            _ => {}
        }
    }
    if tail_start < n
        && !nested
            .iter()
            .any(|&(s, e)| tail_start >= s && tail_start < e)
    {
        out.push((
            n,
            order,
            Event::Return(ReturnEvent {
                expr: (tail_start, n),
            }),
        ));
    }
    out.sort_by_key(|&(anchor, ord, _)| (anchor, ord));
    out.into_iter().map(|(_, _, e)| e).collect()
}

/// Skip a balanced (), [], {} group starting at `open`; returns the index
/// just past the closer.
fn skip_balanced(tokens: &[Tok], open: usize) -> usize {
    let (o, c) = match tokens.get(open).map(|t| t.kind) {
        Some(TokKind::Punct('(')) => ('(', ')'),
        Some(TokKind::Punct('[')) => ('[', ']'),
        Some(TokKind::Punct('{')) => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct(o) {
            depth += 1;
        } else if tokens[j].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// End of an expression starting at `start`: the first `;` at balanced
/// depth, or a `{`/`}` at depth 0 (block starts a tail/if body).
fn expr_end(tokens: &[Tok], start: usize) -> usize {
    let mut d_par = 0i32;
    let mut d_brk = 0i32;
    let mut d_brace = 0i32;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('(') => d_par += 1,
            TokKind::Punct(')') => {
                if d_par == 0 {
                    return j;
                }
                d_par -= 1;
            }
            TokKind::Punct('[') => d_brk += 1,
            TokKind::Punct(']') => {
                if d_brk == 0 {
                    return j;
                }
                d_brk -= 1;
            }
            TokKind::Punct('{') => d_brace += 1,
            TokKind::Punct('}') => {
                if d_brace == 0 {
                    return j;
                }
                d_brace -= 1;
            }
            TokKind::Punct(';') if d_par == 0 && d_brk == 0 && d_brace == 0 => return j,
            TokKind::Punct(',') if d_par == 0 && d_brk == 0 && d_brace == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parse `let <pat> = <expr>` at `let_idx`; returns the event and its
/// anchor (end of the initializer).
fn parse_let(tokens: &[Tok], let_idx: usize) -> (Option<LetEvent>, usize) {
    // Condition-lets (`if let` / `while let`) still bind names; their
    // initializer ends at the block `{`.
    let mut names = Vec::new();
    let mut j = let_idx + 1;
    // Pattern: up to `=` at depth 0 (or `;`/`{`).
    let mut d = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => d += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => d -= 1,
            TokKind::Punct('>') if !(j >= 1 && tokens[j - 1].is_punct('-')) => {
                d -= 1;
            }
            TokKind::Punct('=') if d <= 0 => break,
            TokKind::Punct(';') | TokKind::Punct('{') if d <= 0 => {
                // `let x;` — no initializer.
                return (
                    Some(LetEvent {
                        names,
                        expr: (j, j),
                    }),
                    j,
                );
            }
            TokKind::Ident => {
                let txt = t.text.as_str();
                let lower = txt
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_');
                if lower && txt != "mut" && txt != "ref" {
                    names.push(t.text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() {
        return (None, j);
    }
    // `==` is not an initializer.
    if tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return (None, j);
    }
    let start = j + 1;
    // Condition-lets (`if let` / `while let`) end at the block `{`
    // (struct literals are not allowed in condition position); statement
    // lets end at `;` with braces treated as balanced groups.
    let cond = let_idx >= 1
        && (tokens[let_idx - 1].is_ident("if") || tokens[let_idx - 1].is_ident("while"));
    let end = if cond {
        cond_expr_end(tokens, start)
    } else {
        let_expr_end(tokens, start)
    };
    (
        Some(LetEvent {
            names,
            expr: (start, end),
        }),
        end,
    )
}

/// End of a condition-let scrutinee: the first `{` at balanced depth.
fn cond_expr_end(tokens: &[Tok], start: usize) -> usize {
    let mut d = 0i32;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => d += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                if d == 0 {
                    return j;
                }
                d -= 1;
            }
            TokKind::Punct('{') | TokKind::Punct(';') if d == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// End of a `let` initializer: `;` at balanced depth (struct-literal and
/// block braces are balanced, so `let x = Foo { .. };` spans the braces).
fn let_expr_end(tokens: &[Tok], start: usize) -> usize {
    let mut d = 0i32;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                if d == 0 {
                    return j;
                }
                d -= 1;
            }
            TokKind::Punct(';') if d == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Split the arguments of a call whose `(` is at `open` into top-level
/// comma-separated token ranges.
fn split_args(tokens: &[Tok], open: usize) -> Vec<Span> {
    let close = skip_balanced(tokens, open) - 1;
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut d = 0i32;
    for (k, tok) in tokens.iter().enumerate().take(close).skip(open + 1) {
        match tok.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
            TokKind::Punct(',') if d == 0 => {
                args.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < close {
        args.push((start, close));
    }
    args
}

/// Receiver / path context for a call whose name token is at `idx`:
/// returns `(qualifiers, recv)`.
fn call_context(tokens: &[Tok], idx: usize) -> (Vec<String>, Option<String>) {
    // Path call: `A :: B :: name (`.
    if idx >= 3 && tokens[idx - 1].is_punct(':') && tokens[idx - 2].is_punct(':') {
        let mut quals = Vec::new();
        let mut k = idx;
        while k >= 3
            && tokens[k - 1].is_punct(':')
            && tokens[k - 2].is_punct(':')
            && tokens[k - 3].kind == TokKind::Ident
        {
            quals.insert(0, tokens[k - 3].text.clone());
            k -= 3;
        }
        return (quals, None);
    }
    // Method call: `recv . name (` — recv may be a chain; report the
    // immediate ident when simple.
    if idx >= 2 && tokens[idx - 1].is_punct('.') {
        if tokens[idx - 2].kind == TokKind::Ident {
            // Chain? `a.b.name(` → recv is the field `b`, still useful.
            return (Vec::new(), Some(tokens[idx - 2].text.clone()));
        }
        return (Vec::new(), None);
    }
    (Vec::new(), None)
}

/// `// pmlint: <needle><label>)` on `line` or the comment block above
/// it (`needle` is e.g. `"pmlint: publish("`). Returns the annotation's
/// own line so the caller can bind each annotation to the *first* call
/// after it only.
fn label_annotation(
    comments: &HashMap<u32, String>,
    line: u32,
    needle: &str,
) -> Option<(u32, String)> {
    let parse = |c: &str| -> Option<String> {
        let at = c.find(needle)?;
        let rest = &c[at + needle.len()..];
        let end = rest.find(')')?;
        Some(rest[..end].trim().to_owned())
    };
    if let Some(c) = comments.get(&line) {
        if let Some(l) = parse(c) {
            return Some((line, l));
        }
    }
    let mut l = line;
    for _ in 0..3 {
        if l <= 1 {
            break;
        }
        l -= 1;
        match comments.get(&l) {
            Some(c) => {
                if let Some(lab) = parse(c) {
                    return Some((l, lab));
                }
            }
            None => break,
        }
    }
    None
}

/// Is `needle` present in a comment on `line` or the comment block above?
fn has_annotation(comments: &HashMap<u32, String>, line: u32, needle: &str) -> bool {
    if comments.get(&line).is_some_and(|c| c.contains(needle)) {
        return true;
    }
    let mut l = line;
    for _ in 0..6 {
        if l <= 1 {
            break;
        }
        l -= 1;
        // Non-comment lines (attributes like `#[inline]`, blank lines)
        // don't end the walk — the annotation may sit above them.
        if comments.get(&l).is_some_and(|c| c.contains(needle)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<HirFn> {
        parse_file("crates/x/src/lib.rs", src)
    }

    #[test]
    fn fn_signature_with_nested_generics() {
        let fns = parse(
            "fn f<T: Into<Vec<u8>>>(map: HashMap<u64, Vec<(u64, u64)>>, n: u64) -> Result<Vec<u64>, Error> { n }",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[0].name, "map");
        assert_eq!(fns[0].params[1].name, "n");
        assert!(fns[0].ret.contains("Result"));
    }

    #[test]
    fn impl_type_is_attached() {
        let fns = parse("impl<T: Pod> PVec<T> { fn push(&self, n: u64) -> u64 { n } }");
        assert_eq!(fns[0].impl_type.as_deref(), Some("PVec"));
        assert!(fns[0].has_self);
    }

    #[test]
    fn trait_impl_uses_the_for_type() {
        let fns = parse("impl Publisher for NvPublisher { fn publish(&mut self) {} }");
        assert_eq!(fns[0].impl_type.as_deref(), Some("NvPublisher"));
    }

    #[test]
    fn calls_are_extracted_in_order_with_receivers() {
        let fns = parse(
            "fn g(region: &R) { region.write_pod(8, &1u64); region.flush(8, 8); region.fence(); }",
        );
        let calls: Vec<&CallEvent> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(c),
                _ => None,
            })
            .collect();
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["write_pod", "flush", "fence"]);
        assert_eq!(calls[0].recv.as_deref(), Some("region"));
        assert_eq!(calls[0].args.len(), 2);
        assert_eq!(calls[2].args.len(), 0);
    }

    #[test]
    fn macro_interiors_are_opaque() {
        let fns = parse("fn h() { assert_eq!(a.write_pod(0, &1), b); println!(\"{}\", x); }");
        let calls = fns[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Call(_)))
            .count();
        assert_eq!(calls, 0, "macro interiors must produce no call events");
    }

    #[test]
    fn lifetimes_in_call_expressions_do_not_confuse_parsing() {
        let fns = parse("fn k<'a>(x: &'a str) -> &'a str { trim::<'a>(x); x }");
        assert_eq!(fns[0].params.len(), 1);
        assert!(fns[0]
            .events
            .iter()
            .any(|e| matches!(e, Event::Call(c) if c.name == "trim")));
    }

    #[test]
    fn nested_fns_are_split_out() {
        let fns = parse("fn outer() { fn inner(r: &R) { r.fence(); } inner(&R); }");
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        // outer sees the call to inner but not inner's fence.
        assert!(outer
            .events
            .iter()
            .any(|e| matches!(e, Event::Call(c) if c.name == "inner")));
        assert!(!outer
            .events
            .iter()
            .any(|e| matches!(e, Event::Call(c) if c.name == "fence")));
    }

    #[test]
    fn test_code_is_marked() {
        let fns = parse("#[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} } fn real() {}");
        let by_name = |n: &str| fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
        assert!(!by_name("real").is_test);
    }

    #[test]
    fn publish_annotation_binds_to_the_call() {
        let fns = parse(
            "fn p(r: &R) {\n    // pmlint: publish(delta-rows)\n    r.write_pod(0, &1u64);\n    r.persist(0, 8);\n}",
        );
        let call = fns[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Call(c) if c.name == "write_pod" => Some(c),
                _ => None,
            })
            .unwrap();
        assert_eq!(call.publish_label.as_deref(), Some("delta-rows"));
    }

    #[test]
    fn observe_annotation_binds_to_the_call() {
        let fns = parse(
            "fn q(r: &R) -> u64 {\n    // pmlint: observe(delta-rows)\n    r.load_u64_acquire(0)\n}",
        );
        let call = fns[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Call(c) if c.name == "load_u64_acquire" => Some(c),
                _ => None,
            })
            .unwrap();
        assert_eq!(call.observe_label.as_deref(), Some("delta-rows"));
        assert_eq!(call.publish_label, None);
    }

    #[test]
    fn publish_and_observe_annotations_bind_independently() {
        // Each annotation kind has its own once-per-line accounting: a
        // publish and an observe on adjacent lines must not steal each
        // other's binding.
        let fns = parse(
            "fn pq(r: &R) {\n    // pmlint: publish(a)\n    r.store_u64_release(0, 1);\n    // pmlint: observe(b)\n    r.load_u64_acquire(0);\n}",
        );
        let label = |name: &str, pick: fn(&CallEvent) -> Option<&str>| {
            fns[0].events.iter().find_map(|e| match e {
                Event::Call(c) if c.name == name => pick(c),
                _ => None,
            })
        };
        assert_eq!(
            label("store_u64_release", |c| c.publish_label.as_deref()),
            Some("a")
        );
        assert_eq!(
            label("load_u64_acquire", |c| c.observe_label.as_deref()),
            Some("b")
        );
    }

    #[test]
    fn lock_held_persist_annotation_marks_the_fn() {
        let fns = parse(
            "fn b(&self) {}\n// pmlint: lock-held-persist(one protocol instance)\nfn a(&self) {}",
        );
        let by_name = |n: &str| fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("a").lock_held_persist);
        assert!(!by_name("b").lock_held_persist);
    }

    #[test]
    fn generic_atomic_calls_keep_receiver_and_args() {
        // Atomic ops on generic/pointer atomics must parse like any
        // other method call: receiver, name, arg spans (the ordering
        // classification downstream depends on all three).
        let fns = parse(
            "fn g(p: &AtomicPtr<Node>, v: &AtomicUsize) {\n    p.store(core::ptr::null_mut(), Ordering::Release);\n    v.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n}",
        );
        let call = |name: &str| {
            fns[0]
                .events
                .iter()
                .find_map(|e| match e {
                    Event::Call(c) if c.name == name => Some(c),
                    _ => None,
                })
                .unwrap()
        };
        let st = call("store");
        assert_eq!(st.recv.as_deref(), Some("p"));
        assert_eq!(st.args.len(), 2);
        let cx = call("compare_exchange");
        assert_eq!(cx.recv.as_deref(), Some("v"));
        assert_eq!(cx.args.len(), 4);
    }

    #[test]
    fn raw_identifiers_parse_as_fns() {
        let fns = parse("fn r#async(r#type: u64) -> u64 { r#type }");
        assert_eq!(fns[0].name, "async");
        assert_eq!(fns[0].params[0].name, "type");
    }

    #[test]
    fn raw_strings_do_not_fabricate_events() {
        // Call-looking and store-looking text inside raw strings (with
        // embedded quotes and braces) must not become HIR events.
        let fns = parse(
            r###"fn f(region: &NvmRegion) { let s = r#"write_pod(0, &1) } fn g() {"#; region.fence(); }"###,
        );
        assert_eq!(fns.len(), 1);
        let calls: Vec<&str> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["fence"]);
    }

    #[test]
    fn let_bindings_capture_initializer_ranges() {
        let fns = parse("fn m(v: &[u8]) { let p = v.as_ptr() as u64; let q = p + 8; }");
        let lets: Vec<&LetEvent> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Let(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lets.len(), 2);
        assert_eq!(lets[0].names, vec!["p"]);
        assert_eq!(lets[1].names, vec!["q"]);
    }
}
