//! CLI entry point:
//! `cargo run -p pmlint -- [--deny] [--root DIR] [--sarif OUT] [--github]
//! [--suppress FILE] [--explain RULE]`.
//!
//! Lints the workspace and prints findings; with `--deny`, exits 1 when
//! any finding survives (the CI contract). `--sarif` writes a SARIF
//! 2.1.0 report, `--github` prints workflow-command annotations, and
//! `--explain` documents a rule and exits.
//!
//! Exit codes are distinct so CI can tell "the tree is dirty" from "the
//! linter could not run": 0 = clean, 1 = findings under `--deny`,
//! 2 = usage error, 3 = I/O or internal error (unreadable tree,
//! unwritable report).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut sarif_out: Option<PathBuf> = None;
    let mut github = false;
    let mut suppress: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--github" => github = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("pmlint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--sarif" => {
                let Some(out) = args.next() else {
                    eprintln!("pmlint: --sarif needs an output path");
                    return ExitCode::from(2);
                };
                sarif_out = Some(PathBuf::from(out));
            }
            "--suppress" => {
                let Some(file) = args.next() else {
                    eprintln!("pmlint: --suppress needs a file");
                    return ExitCode::from(2);
                };
                suppress = Some(PathBuf::from(file));
            }
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("pmlint: --explain needs a rule name; known rules:");
                    for r in pmlint::explained_rules() {
                        eprintln!("  {r}");
                    }
                    return ExitCode::from(2);
                };
                return match pmlint::explain(&rule) {
                    Some(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("pmlint: unknown rule {rule:?}; known rules:");
                        for r in pmlint::explained_rules() {
                            eprintln!("  {r}");
                        }
                        ExitCode::from(2)
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: pmlint [--deny] [--root DIR] [--sarif OUT] [--github] \
                     [--suppress FILE] [--explain RULE]\n\
                     \n\
                     exit codes:\n\
                     \x20 0  clean (or findings without --deny)\n\
                     \x20 1  findings, with --deny (the CI gate tripped)\n\
                     \x20 2  usage error (unknown flag, missing operand, unknown rule)\n\
                     \x20 3  I/O or internal error (unreadable tree or suppress file,\n\
                     \x20    unwritable SARIF report) — the lint did not run to completion"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pmlint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    if !root.is_dir() {
        eprintln!("pmlint: root {} is not a directory", root.display());
        return ExitCode::from(3);
    }

    let mut cfg = pmlint::Config::tree_default();
    match &suppress {
        Some(file) => match std::fs::read_to_string(file) {
            Ok(text) => cfg
                .suppressions
                .extend(pmlint::Config::parse_suppressions(&text)),
            Err(e) => {
                eprintln!("pmlint: cannot read {}: {e}", file.display());
                return ExitCode::from(3);
            }
        },
        None => pmlint::load_suppressions(&root, &mut cfg),
    }

    let findings = match pmlint::lint_tree(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pmlint: cannot walk tree at {}: {e}", root.display());
            return ExitCode::from(3);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if github && !findings.is_empty() {
        println!("{}", pmlint::sarif::to_github_annotations(&findings));
    }
    if let Some(out) = sarif_out {
        let doc = pmlint::sarif::to_sarif(&findings);
        if let Err(e) = std::fs::write(&out, doc) {
            eprintln!("pmlint: cannot write {}: {e}", out.display());
            return ExitCode::from(3);
        }
        println!("pmlint: SARIF report written to {}", out.display());
    }
    let specs = nvm::protocol_registry().len();
    println!(
        "pmlint: {} finding(s); {} protocol spec(s) validated; {} publish label(s) bound",
        findings.len(),
        specs,
        nvm::publish_labels().len(),
    );
    if deny && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
