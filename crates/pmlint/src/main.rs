//! CLI entry point: `cargo run -p pmlint -- [--deny] [--root DIR]`.
//!
//! Lints the workspace and prints findings; with `--deny`, exits 1 when
//! any finding survives (the CI contract).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("pmlint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                println!("usage: pmlint [--deny] [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pmlint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = pmlint::Config::tree_default();
    let findings = match pmlint::lint_tree(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pmlint: cannot walk tree at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    let specs = nvm::protocol_registry().len();
    println!(
        "pmlint: {} finding(s); {} protocol spec(s) validated",
        findings.len(),
        specs
    );
    if deny && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
