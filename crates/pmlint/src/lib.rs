#![warn(missing_docs)]

//! `pmlint` — static crash-consistency analysis for the workspace.
//!
//! Two halves, in the spirit of rustc's `tidy` (hand-rolled, zero
//! registry dependencies):
//!
//! 1. **Protocol specs** — the persist-order protocols declared in
//!    [`nvm::protocol_registry`] are statically validated for
//!    happens-before completeness ([`validate_protocols`]), and the
//!    checksummed labels they declare are cross-checked against the
//!    `media_extents` targeting maps in the source tree
//!    ([`media_findings`], rule `publish-once-media`).
//! 2. **Source lints** — a token-level walk of every crate
//!    ([`lint_source`], [`lint_tree`]) enforcing the rules documented in
//!    [`rules`](crate): no raw NVM writes outside flush-annotated
//!    helpers, no panicking constructs on recovery/replay-critical paths,
//!    `Pod` layout discipline, `// SAFETY:` comments on every `unsafe`,
//!    and no `get_unchecked`.
//!
//! The CLI (`cargo run -p pmlint -- --deny`) runs both halves over the
//! workspace and exits non-zero on any finding.

mod config;
mod lexer;
mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use config::{Config, CriticalScope};
pub use rules::{lint_source, FileFacts, Finding};

/// Statically validate every declared persist-order protocol spec.
pub fn validate_protocols() -> Vec<Finding> {
    let mut findings = Vec::new();
    for spec in nvm::protocol_registry() {
        if let Err(e) = spec.validate() {
            findings.push(Finding {
                rule: "protocol-spec",
                file: "crates/nvm/src/protocol.rs".to_owned(),
                line: 1,
                col: 1,
                msg: format!(
                    "protocol {:?} fails happens-before validation: {e}",
                    spec.name
                ),
            });
        }
    }
    findings
}

/// Tree-level `publish-once-media` rule: every checksummed store label
/// declared by a protocol spec must be registered (as a string literal)
/// in some `media_extents` fn — otherwise the media verifier and the
/// fault-injection suites silently skip the structure.
pub fn media_findings(files: &[(String, FileFacts)]) -> Vec<Finding> {
    let mut registered: BTreeSet<String> = BTreeSet::new();
    let mut media_files: Vec<&str> = Vec::new();
    for (path, facts) in files {
        if let Some(labels) = &facts.media_labels {
            registered.extend(labels.iter().cloned());
            media_files.push(path);
        }
    }
    let mut findings = Vec::new();
    let anchor = media_files.first().copied().unwrap_or("<tree>").to_owned();
    let mut checked: BTreeSet<&'static str> = BTreeSet::new();
    for spec in nvm::protocol_registry() {
        for (label, checksummed) in spec.store_labels() {
            if checksummed && checked.insert(label) && !registered.contains(label) {
                findings.push(Finding {
                    rule: "publish-once-media",
                    file: anchor.clone(),
                    line: 1,
                    col: 1,
                    msg: format!(
                        "checksummed protocol label {label:?} (spec {:?}) is not registered in any media_extents map",
                        spec.name
                    ),
                });
            }
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, skipping build output and
/// the linter's own seeded-violation fixtures.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<std::io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace under `root`: every `.rs` file in `crates/`,
/// `tests/`, and `examples/`, plus the protocol-spec and media-registry
/// checks.
pub fn lint_tree(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        collect_rs_files(&root.join(sub), &mut files)?;
    }
    let mut findings = validate_protocols();
    let mut facts = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let (mut f, file_facts) = lint_source(&rel, &source, cfg);
        findings.append(&mut f);
        facts.push((rel, file_facts));
    }
    if cfg.check_media_registry {
        findings.append(&mut media_findings(&facts));
    }
    Ok(findings)
}
