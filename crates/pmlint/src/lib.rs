#![warn(missing_docs)]

//! `pmlint` — static crash-consistency analysis for the workspace.
//!
//! Two halves, in the spirit of rustc's `tidy` (hand-rolled, zero
//! registry dependencies):
//!
//! 1. **Protocol specs** — the persist-order protocols declared in
//!    [`nvm::protocol_registry`] are statically validated for
//!    happens-before completeness ([`validate_protocols`]), and the
//!    checksummed labels they declare are cross-checked against the
//!    `media_extents` targeting maps in the source tree
//!    ([`media_findings`], rule `publish-once-media`).
//! 2. **Concurrency lints** — interprocedural atomics-ordering and
//!    lock-discipline passes over the engine call graph
//!    ([`analyze`](crate), rules `atomic-ordering`, `lock-held-persist`,
//!    `guard-escape`, `lock-cycle`): release publication / acquire
//!    observation at every ordering-annotated protocol site, no persist
//!    fences under a lock, no escaping guards, one global lock order.
//! 3. **Source lints** — a token-level walk of every crate
//!    ([`lint_source`], [`lint_tree`]) enforcing the rules documented in
//!    [`rules`](crate): no raw NVM writes outside flush-annotated
//!    helpers, no panicking constructs on recovery/replay-critical paths,
//!    `Pod` layout discipline, `// SAFETY:` comments on every `unsafe`,
//!    no `get_unchecked`, and — via the call-graph closure of the
//!    allocation primitives — no panicking construct in any fn that can
//!    observe an allocation failure (`alloc-unwrap`).
//!
//! The CLI (`cargo run -p pmlint -- --deny`) runs both halves over the
//! workspace and exits non-zero on any finding.

mod allocpath;
mod callgraph;
mod concurrency;
mod config;
mod cost;
mod dataflow;
mod explain;
mod hir;
mod lexer;
mod rules;
pub mod sarif;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use allocpath::{alloc_unwrap_findings, ALLOC_SEEDS, RULE_ALLOC_UNWRAP};
pub use concurrency::{
    RULE_ATOMIC_ORDERING, RULE_GUARD_ESCAPE, RULE_LOCK_CYCLE, RULE_LOCK_HELD_PERSIST,
};
pub use config::{Config, CriticalScope};
pub use cost::{RULE_DEAD_FLUSH, RULE_FENCE_COALESCE, RULE_READ_PATH_PURITY, RULE_REDUNDANT_FLUSH};
pub use dataflow::{
    analyze, AnalysisCtx, RULE_PERSIST_ORDER, RULE_PUBLISH_BINDING, RULE_UNFLUSHED_ESCAPE,
    RULE_VOLATILE_ESCAPE,
};
pub use explain::{explain, explained_rules};
pub use hir::{build_program, HirFn, HirProgram};
pub use rules::{lint_source, FileFacts, Finding};

/// Crates covered by the interprocedural analyses (the engine's
/// persistence-relevant call graph).
pub const ANALYZED_CRATES: &[&str] = &["nvm", "storage", "core", "txn", "wal", "index"];

/// Run the interprocedural analyses over an explicit set of
/// `(path, source)` pairs — the corpus-test entry point.
pub fn analyze_sources(files: &[(String, String)], ctx: &AnalysisCtx) -> Vec<Finding> {
    let prog = hir::build_program(files);
    dataflow::analyze(&prog, ctx)
}

/// The analysis context for the real tree: publish labels from the nvm
/// protocol registry, with binding required.
pub fn tree_analysis_ctx() -> AnalysisCtx {
    let labels = nvm::publish_labels();
    AnalysisCtx {
        known_labels: labels.iter().map(|p| p.label.to_owned()).collect(),
        released_labels: labels
            .iter()
            .filter(|p| {
                p.order.is_some_and(|o| {
                    matches!(
                        o,
                        nvm::MemOrder::Release | nvm::MemOrder::AcqRel | nvm::MemOrder::SeqCst
                    )
                })
            })
            .map(|p| p.label.to_owned())
            .collect(),
        check_publish_binding: true,
        labels_anchor: "crates/nvm/src/protocol.rs".to_owned(),
    }
}

/// Statically validate every declared persist-order protocol spec.
pub fn validate_protocols() -> Vec<Finding> {
    let mut findings = Vec::new();
    for spec in nvm::protocol_registry() {
        if let Err(e) = spec.validate() {
            findings.push(Finding {
                rule: "protocol-spec",
                file: "crates/nvm/src/protocol.rs".to_owned(),
                line: 1,
                col: 1,
                msg: format!(
                    "protocol {:?} fails happens-before validation: {e}",
                    spec.name
                ),
            });
        }
    }
    findings
}

/// Tree-level `publish-once-media` rule: every checksummed store label
/// declared by a protocol spec must be registered (as a string literal)
/// in some `media_extents` fn — otherwise the media verifier and the
/// fault-injection suites silently skip the structure.
pub fn media_findings(files: &[(String, FileFacts)]) -> Vec<Finding> {
    let mut registered: BTreeSet<String> = BTreeSet::new();
    let mut media_files: Vec<&str> = Vec::new();
    for (path, facts) in files {
        if let Some(labels) = &facts.media_labels {
            registered.extend(labels.iter().cloned());
            media_files.push(path);
        }
    }
    let mut findings = Vec::new();
    let anchor = media_files.first().copied().unwrap_or("<tree>").to_owned();
    let mut checked: BTreeSet<&'static str> = BTreeSet::new();
    for spec in nvm::protocol_registry() {
        for (label, checksummed) in spec.store_labels() {
            if checksummed && checked.insert(label) && !registered.contains(label) {
                findings.push(Finding {
                    rule: "publish-once-media",
                    file: anchor.clone(),
                    line: 1,
                    col: 1,
                    msg: format!(
                        "checksummed protocol label {label:?} (spec {:?}) is not registered in any media_extents map",
                        spec.name
                    ),
                });
            }
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, skipping build output and
/// the linter's own seeded-violation fixtures.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<std::io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "corpus" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace under `root`: every `.rs` file in `crates/`,
/// `tests/`, and `examples/`, plus the protocol-spec and media-registry
/// checks.
pub fn lint_tree(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        collect_rs_files(&root.join(sub), &mut files)?;
    }
    let mut findings = validate_protocols();
    let mut facts = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let (mut f, file_facts) = lint_source(&rel, &source, cfg);
        findings.append(&mut f);
        facts.push((rel.clone(), file_facts));
        sources.push((rel, source));
    }
    if cfg.check_media_registry {
        findings.append(&mut media_findings(&facts));
    }
    if cfg.check_dataflow {
        let engine: Vec<(String, String)> = sources
            .into_iter()
            .filter(|(p, _)| {
                ANALYZED_CRATES
                    .iter()
                    .any(|c| p.starts_with(&format!("crates/{c}/")))
            })
            .collect();
        findings.append(&mut analyze_sources(&engine, &tree_analysis_ctx()));
        findings.append(&mut alloc_unwrap_findings(&engine, allocpath::ALLOC_SEEDS));
    }
    findings.retain(|f| !cfg.is_suppressed(f.rule, &f.file));
    Ok(findings)
}

/// Load suppressions from `<root>/pmlint.suppress` into `cfg` (missing
/// file = no suppressions).
pub fn load_suppressions(root: &Path, cfg: &mut Config) {
    if let Ok(text) = std::fs::read_to_string(root.join("pmlint.suppress")) {
        cfg.suppressions.extend(Config::parse_suppressions(&text));
    }
}
