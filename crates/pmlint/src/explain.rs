//! `pmlint --explain <rule>`: rationale, an example finding, and the fix
//! pattern for every rule the linter ships.

struct RuleDoc {
    name: &'static str,
    text: &'static str,
}

const DOCS: &[RuleDoc] = &[
    RuleDoc {
        name: "persist-order",
        text: r#"persist-order — unflushed store reaches a publish site

WHY
  Instant restart only works if every NVM store is durable (flushed with
  clwb AND fenced with sfence) before the 8-byte publish store that makes
  it reachable. A store that is dirty or merely in-flight at publish time
  can be reordered past the publish by the memory system; a crash in that
  window recovers a published structure with garbage inside it. This is
  tracked interprocedurally: a helper's store escaping into a caller that
  publishes is the same bug split across two fns.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:703:9: [persist-order] NVM store `set`
  in `PVar::set` (crates/nvm/src/pvar.rs:57) reaches publish `delta-rows`
  at crates/storage/src/nv/table.rs:703 while unflushed (dirty); path:
  store `set` in `PVar::set` (pvar.rs:57) -> via call to `set` in
  `NvTable::insert_version` (table.rs:685) -> publish `delta-rows` in
  `NvTable::insert_version` (table.rs:703)

FIX PATTERN
  Before the publish store, flush every dirty extent and fence:
      region.flush(off, len)?;   // one per touched extent
      region.fence();
      // pmlint: publish(<label>)
      region.write_pod(publish_off, &value)?;
      region.persist(publish_off, 8)?;
  Publish sites are declared with `// pmlint: publish(<label>)` where
  <label> is a publish label from nvm::protocol_registry()."#,
    },
    RuleDoc {
        name: "unflushed-escape",
        text: r#"unflushed-escape — fn returns with its own dirty NVM stores

WHY
  A fn that writes NVM and returns without flushing hands an invisible
  obligation to every caller. That is sometimes intentional (batching
  flushes across fields), but it must be an explicit contract or a caller
  will eventually publish over a dirty line.

EXAMPLE FINDING
  crates/nvm/src/pvar.rs:57:9: [unflushed-escape] `PVar::set` returns
  with NVM store `write_pod` in `PVar::set` (crates/nvm/src/pvar.rs:57)
  unflushed; flush before returning or annotate the fn
  `// pmlint: caller-flushes`

FIX PATTERN
  Either persist locally:
      region.write_pod(off, &v)?;
      region.persist(off, len)?;
  or declare the batching contract on the fn:
      /// Write without flushing; the caller batches flushes.
      // pmlint: caller-flushes
      pub fn set(&self, region: &NvmRegion, value: &T) -> Result<()> { … }
  Annotated stores are still tracked: they must be flushed+fenced by the
  caller before any publish site (rule persist-order)."#,
    },
    RuleDoc {
        name: "volatile-escape",
        text: r#"volatile-escape — DRAM-derived address flows into a persistent sink

WHY
  A persisted virtual address (Box/Vec pointer, &T cast to usize, raw
  pointer cast to an integer) is meaningless after restart: the heap is
  gone and the mapping address changes. Anything durable must reference
  NVM data by NvmRegion *offset*, never by pointer. The taint analysis
  tracks pointer-to-integer casts through locals, helper returns, and
  helper parameters into `write_pod`/`pvec`/`pvar`/`pslab` sinks.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:512:9: [volatile-escape] DRAM-derived
  address from `as_ptr` result (table.rs:508) flows into persistent sink
  `write_pod` in `NvTable::stash` (table.rs:512); persisted virtual
  addresses are dangling after restart — store an NvmRegion offset instead

FIX PATTERN
  Allocate in the region and store the offset:
      let off = heap.alloc(len)?;          // NVM offset, stable
      region.write_bytes(off, bytes)?;
      region.write_pod(slot, &off)?;       // persist the offset
  Never:
      region.write_pod(slot, &(v.as_ptr() as u64))?;  // dangling"#,
    },
    RuleDoc {
        name: "publish-binding",
        text: r#"publish-binding — publish annotations must match the protocol registry

WHY
  The persist-order analysis is anchored at publish sites, bound to the
  publish labels declared by nvm::protocol_registry() via
  `// pmlint: publish(<label>)` annotations. An unknown label means the
  annotation is stale or typo'd; a declared label with no annotated site
  means a protocol's publish point is invisible to the analyzer — its
  whole ordering check silently disappears.

EXAMPLE FINDING
  crates/core/src/backend_nv.rs:365:9: [publish-binding] publish label
  `catalog-ctz` is not declared by any ProtocolSpec in
  nvm::protocol_registry()

FIX PATTERN
  Use the exact label from the spec's Publish step:
      // pmlint: publish(catalog-cts)
      self.cts.store(r, &v)?;
  and keep one annotated site in tree for every label returned by
  nvm::publish_labels()."#,
    },
    RuleDoc {
        name: "raw-nvm-write",
        text: r#"raw-nvm-write — raw pointer store into mapped NVM outside a flush helper

WHY
  `ptr::write`/`copy_nonoverlapping`/volatile stores into the mapped
  region bypass the flush/fence bookkeeping (and the persist-trace
  recorder). All NVM mutation must go through the region's write helpers
  so the crash scheduler sees every store.

EXAMPLE FINDING
  crates/nvm/src/region.rs:301:13: [raw-nvm-write] raw pointer write into
  mapped NVM outside a `// pmlint: flush-helper` fn

FIX PATTERN
  Route the store through `NvmRegion::write_pod`/`write_bytes`, or — for
  the primitive implementing those helpers — annotate the fn
  `// pmlint: flush-helper` and keep flush+fence handling inside it."#,
    },
    RuleDoc {
        name: "recovery-unwrap",
        text: r#"recovery-unwrap — unwrap/expect on a recovery or replay path

WHY
  Recovery code runs against arbitrary post-crash bytes. An `unwrap()` on
  that path turns torn data into a process abort — the database fails to
  restart at all, which is strictly worse than detecting and healing.

EXAMPLE FINDING
  crates/wal/src/recovery.rs:88:30: [recovery-unwrap] `unwrap()` on
  recovery-critical path

FIX PATTERN
  Propagate a typed error and let the recovery ladder fall back:
      let hdr = decode_header(bytes).map_err(|_| RecoveryError::TornHeader)?;"#,
    },
    RuleDoc {
        name: "recovery-panic",
        text: r#"recovery-panic — panic!/assert!/unreachable! on a recovery path

WHY
  Same contract as recovery-unwrap: post-crash bytes are untrusted input.
  Asserting on their shape aborts the restart instead of degrading to the
  next rung of the recovery ladder (media-verify → WAL replay).

EXAMPLE FINDING
  crates/core/src/db.rs:412:9: [recovery-panic] `assert!` on
  recovery-critical path

FIX PATTERN
  Convert the invariant to a checked error:
      if off + len > region.len() { return Err(RecoveryError::Extent); }"#,
    },
    RuleDoc {
        name: "recovery-indexing",
        text: r#"recovery-indexing — unchecked slice indexing on a recovery path

WHY
  `bytes[a..b]` panics on out-of-range — and ranges read from post-crash
  NVM can be torn to arbitrary values. Recovery must bounds-check every
  extent it reads.

EXAMPLE FINDING
  crates/wal/src/checkpoint.rs:141:18: [recovery-indexing] unchecked
  slice indexing on recovery-critical path

FIX PATTERN
      let chunk = bytes.get(a..b).ok_or(RecoveryError::Extent)?;"#,
    },
    RuleDoc {
        name: "pod-repr-c",
        text: r#"pod-repr-c — Pod type without #[repr(C)]

WHY
  Pod structs are persisted byte-for-byte. The default Rust repr may
  reorder fields between compiler versions, silently corrupting every
  existing NVM image on upgrade. `#[repr(C)]` pins the layout.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:60:1: [pod-repr-c] Pod impl for
  `RowMeta` but struct is not #[repr(C)]

FIX PATTERN
      #[repr(C)]
      #[derive(Clone, Copy)]
      struct RowMeta { … }
      unsafe impl Pod for RowMeta {}"#,
    },
    RuleDoc {
        name: "pod-padding-assert",
        text: r#"pod-padding-assert — Pod type without a size assertion

WHY
  Padding bytes in a persisted struct are undefined memory: they leak
  heap contents into the image and break checksums. A const size
  assertion (sum of field sizes == size_of::<T>()) proves there is none.

EXAMPLE FINDING
  crates/core/src/txn_registry.rs:33:1: [pod-padding-assert] Pod impl for
  `TxnSlot` without a `size_of` padding assertion

FIX PATTERN
      const _: () = assert!(core::mem::size_of::<TxnSlot>() == 8 + 8 + 4 + 4);"#,
    },
    RuleDoc {
        name: "unsafe-safety-comment",
        text: r#"unsafe-safety-comment — unsafe block without a // SAFETY: comment

WHY
  Every unsafe block in a persistence engine encodes a memory-model
  argument (aliasing, validity of mapped bytes, fence ordering). The
  argument must be written down where the block is, or review and
  maintenance degrade to guessing.

EXAMPLE FINDING
  crates/nvm/src/region.rs:240:9: [unsafe-safety-comment] `unsafe` block
  without `// SAFETY:` comment

FIX PATTERN
      // SAFETY: `off + len` bounds-checked above; the mapping lives for
      // the lifetime of `self`.
      unsafe { … }"#,
    },
    RuleDoc {
        name: "ffi-safety-comment",
        text: r#"ffi-safety-comment — foreign declarations without a SAFETY argument

WHY
  A foreign `extern` block is an unchecked trust boundary: the compiler
  verifies nothing against the C side, so a wrong parameter type or a
  missed out-parameter is silent undefined behaviour at every call. The
  zero-dependency mmap backend hand-declares mmap/msync/munmap — exactly
  the calls that hand the kernel a pointer into the persistent image. The
  block must carry a `// SAFETY:` comment saying where each prototype was
  verified, and every foreign fn whose signature carries raw pointers
  must state the pointer contract (validity, length, ownership) its call
  sites rely on. `extern crate` and `extern "C" fn` definitions declare
  nothing foreign and are exempt.

EXAMPLE FINDING
  crates/nvm/src/mmap.rs:34:1: [ffi-safety-comment] foreign `extern`
  block without a `// SAFETY:` comment — the compiler checks nothing
  against the C side; state where each prototype was verified

FIX PATTERN
  // SAFETY: each declaration matches the POSIX C prototype exactly
  // (checked against `man 2 mmap` on Linux glibc and musl).
  extern "C" {
      // SAFETY: callers pass a null hint, a length > 0, and an owned fd;
      // the returned mapping (or MAP_FAILED) is checked before use.
      fn mmap(addr: *mut c_void, length: usize, prot: i32, flags: i32,
              fd: i32, offset: i64) -> *mut c_void;
      fn ftruncate(fd: i32, length: i64) -> i32;  // no pointers: block
                                                  // comment suffices
  }"#,
    },
    RuleDoc {
        name: "no-get-unchecked",
        text: r#"no-get-unchecked — get_unchecked in engine code

WHY
  `get_unchecked` on data that can be influenced by post-crash bytes is
  undefined behaviour waiting for a torn length field. The engine's hot
  paths have bounds checks hoisted already; the unchecked variant buys
  nothing measurable and costs memory safety.

EXAMPLE FINDING
  crates/index/src/nvhash.rs:210:24: [no-get-unchecked] `get_unchecked`
  — use checked indexing

FIX PATTERN
      let e = self.slots.get(i).ok_or(IndexError::Slot)?;"#,
    },
    RuleDoc {
        name: "publish-once-media",
        text: r#"publish-once-media — checksummed protocol label missing from media map

WHY
  Every checksummed store label declared by a ProtocolSpec must be
  registered in a `media_extents` map, or the media verifier and the
  fault-injection suites silently skip that structure — its corruption
  becomes undetectable.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:1:1: [publish-once-media] checksummed
  protocol label "delta-rows" (spec "delta-append") is not registered in
  any media_extents map

FIX PATTERN
  Add the label with its extent to the owning structure's media map:
      fn media_extents(&self) -> Vec<(&'static str, Extent)> {
          vec![("delta-rows", self.rows_publish_extent()), …]
      }"#,
    },
    RuleDoc {
        name: "protocol-spec",
        text: r#"protocol-spec — a declared ProtocolSpec fails happens-before validation

WHY
  The persist-order protocols in nvm::protocol_registry() are validated
  statically: acyclic, exactly one publish step, every store dominated by
  a covering flush and a fence before the publish. A spec that fails is a
  design bug — the code implementing it cannot be crash-consistent.

EXAMPLE FINDING
  crates/nvm/src/protocol.rs:1:1: [protocol-spec] protocol "delta-append"
  fails happens-before validation: store "delta-rows" not covered by a
  flush before publish

FIX PATTERN
  Fix the spec's step graph (add the missing Flush/Fence step or the
  missing `after` edge) so it reflects the intended — correct — order,
  then make the code match it."#,
    },
    RuleDoc {
        name: "atomic-ordering",
        text: r#"atomic-ordering — publication without release/acquire ordering

WHY
  The engine publishes structures twice: to the medium (flush + fence,
  rule persist-order) and to *other threads* (a release store that an
  acquire load pairs with). A `Relaxed` store at a publish site — or a
  plain, non-atomic store where the ProtocolSpec declares release
  publication — lets a concurrent reader observe the publish word before
  the row bytes it guards. The analysis is interprocedural: a helper's
  relaxed store reached from an annotated publish site is the same bug
  one frame away. Sites are anchored by the same annotations the persist
  analysis uses: `// pmlint: publish(<label>)` for the writer side and
  `// pmlint: observe(<label>)` for the reader side.

EXAMPLE FINDING
  crates/core/src/backend_nv.rs:365:9: [atomic-ordering] publish `seq`
  uses atomic `store` with ordering Relaxed; publish requires Release
  (or SeqCst) — a reader that acquires the publish word must also see
  every prior store

FIX PATTERN
  Writer side, through the region primitive (release + persist-tracked):
      // pmlint: publish(catalog-cts)
      region.store_u64_release(off, cts)?;
      region.persist(off, 8)?;
  Reader side:
      // pmlint: observe(catalog-cts)
      let cts = region.load_u64_acquire(off)?;
  For raw atomics, use `Ordering::Release` / `Ordering::Acquire`
  (RMWs: `AcqRel`)."#,
    },
    RuleDoc {
        name: "lock-held-persist",
        text: r#"lock-held-persist — persist fence while holding a lock

WHY
  A persist (clwb + sfence) costs media-write latency — hundreds of
  nanoseconds to microseconds under the NVM latency model. Executing one
  while holding a mutex or write guard stalls every contending thread
  for the duration of the flush; under load this serializes the engine
  on the medium. The check is transitive: a helper that fences, called
  under a guard, is the same stall. Protocols that *require* the fence
  inside the critical section (e.g. allocator reserve→activate) declare
  it with `// pmlint: lock-held-persist(<reason>)` on the fn.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:512:9: [lock-held-persist] persist
  fence `persist` in `NvTable::commit` while holding lock `meta`
  (acquired line 508); persist latency under a lock stalls every
  contending thread — drop the guard first, or annotate the fn
  `// pmlint: lock-held-persist(<reason>)` if the protocol requires it

FIX PATTERN
  Stage under the lock, persist outside it:
      let guard = self.meta.lock();
      region.write_pod(off, &v)?;
      drop(guard);
      region.persist(off, 8)?;
  or document the protocol that needs the fence inside:
      // pmlint: lock-held-persist(reserve+activate is one atomic
      // allocator protocol)
      pub fn alloc(&self, len: u64) -> Result<u64> { … }"#,
    },
    RuleDoc {
        name: "guard-escape",
        text: r#"guard-escape — lock guard returned from the fn that acquired it

WHY
  Returning a `MutexGuard`/`RwLock*Guard` hands the critical section to
  the caller: the lock stays held for as long as the caller keeps the
  value, invisible at every call site. In an engine where persist
  latency already rides on lock hold times, an escaped guard turns one
  careless caller into a global stall (or a deadlock, combined with
  rule lock-cycle).

EXAMPLE FINDING
  crates/core/src/catalog.rs:88:9: [guard-escape] guard `guard` for lock
  `meta` escapes `Catalog::lock_meta` by return; the lock stays held for
  as long as the caller keeps the value — extract the data and drop the
  guard instead

FIX PATTERN
  Return the data, not the guard:
      pub fn epoch(&self) -> u64 {
          let guard = self.meta.lock();
          guard.epoch
      }"#,
    },
    RuleDoc {
        name: "lock-cycle",
        text: r#"lock-cycle — inconsistent lock order or self re-acquisition

WHY
  Two code paths that take the same pair of locks in opposite order
  deadlock under a concurrent interleaving; a fn that re-acquires a lock
  it already holds self-deadlocks unconditionally (std locks are not
  reentrant). Both are order bugs that no test reliably reproduces —
  the static pairwise check catches them before the lock-free era makes
  the interleavings denser. Read-read re-acquisition on an RwLock is
  legal and not flagged.

EXAMPLE FINDING
  crates/core/src/engine.rs:204:30: [lock-cycle] inconsistent lock
  order: `catalog` (held since line 202) then `index` in
  `Engine::checkpoint` but `index` (held since line 311) then `catalog`
  in `Engine::compact` — a concurrent interleaving deadlocks; pick one
  order

FIX PATTERN
  Pick one global order (document it where the locks are declared) and
  make every path follow it; for self-deadlocks, thread the existing
  guard through instead of re-locking."#,
    },
    RuleDoc {
        name: "send-sync-justification",
        text: r#"send-sync-justification — unsafe Send/Sync impl without a thread-safety argument

WHY
  `unsafe impl Send/Sync` is a concurrency claim: the type is safe to
  move to or share between threads. The engine's SAFETY-comment
  convention (rule unsafe-safety-comment) requires *an* argument, but a
  crash-consistency argument ("bounds checked", "mapping outlives self")
  does not cover the claim being made here. The comment must say what
  lock, atomic, or ownership rule makes cross-thread use sound.

EXAMPLE FINDING
  crates/nvm/src/region.rs:61:22: [send-sync-justification] `unsafe impl
  Sync for NvmRegion` without a thread-safety argument in its
  `// SAFETY:` comment — asserting `Sync` claims the type is safe across
  threads; the comment must say why (what lock, atomic, or ownership
  rule makes it so)

FIX PATTERN
      // SAFETY: all mutation of the mapped bytes goes through the
      // per-extent locks; the raw pointer itself is never exposed, so
      // concurrent `&self` access cannot race.
      unsafe impl Sync for NvmRegion {}"#,
    },
    RuleDoc {
        name: "pod-interior-mutability",
        text: r#"pod-interior-mutability — Pod type with an interior-mutable field

WHY
  Pod values are raw bytes on the medium: they are written with
  `write_pod`, checksummed, and resurrected verbatim after a crash. An
  interior-mutable field (`Atomic*`, `Cell`, `Mutex`, …) inside a Pod
  type persists transient runtime state — a lock word or in-flight flag
  — and recovery would revive it in whatever state the crash left it.
  Runtime synchronization state belongs next to the image, never in it.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:60:25: [pod-interior-mutability]
  `unsafe impl Pod for SlotHeader` but `SlotHeader` contains
  interior-mutable field type `AtomicU64` — Pod values are raw bytes on
  the medium; lock/atomic state must not be persisted

FIX PATTERN
  Persist the plain value and keep the atomic outside the Pod image:
      #[repr(C)]
      struct SlotHeader { seq: u64, len: u64 }   // persisted
      struct Slot { hdr_off: u64, seq: AtomicU64 } // runtime view"#,
    },
    RuleDoc {
        name: "alloc-unwrap",
        text: r#"alloc-unwrap — panicking construct where an allocation failure can surface

WHY
  Capacity exhaustion is a normal runtime condition, not a bug: the heap
  is finite, the shadow log can hit ENOSPC, and the engine degrades
  through backpressure and read-only modes instead of dying. That only
  works if every fn on the reverse call-graph closure of the allocation
  primitives (heap reserve/activate/alloc, log append/sync) unwinds
  allocation errors as typed values. An `.unwrap()` or `panic!` anywhere
  in that closure turns a full disk or a full heap into an abort — the
  exact failure the degradation machinery exists to prevent.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:947:44: [alloc-unwrap] `.expect(..)` in
  `merge`, which can observe an allocation failure (calls `alloc`) —
  capacity exhaustion must unwind as a typed error, not abort

FIX PATTERN
  Replace the panic with a typed error the caller can act on:
      let id = dict
          .binary_search(&value)
          .map_err(|_| StorageError::Corrupt { reason: "..." })?;
  For genuinely infallible conversions, restructure so no panicking call
  remains (e.g. `u32::from_le_bytes([b[0], b[1], b[2], b[3]])` instead of
  `.try_into().unwrap()`)."#,
    },
    RuleDoc {
        name: "redundant-flush",
        text: r#"redundant-flush — same line flushed twice with no intervening store

WHY
  A cache-line write-back (clwb) costs on the order of a hundred
  nanoseconds on NVM; it dominates the persistence cost of small
  transactions. Flushing a line that was already flushed — and not
  re-dirtied by a store in between — pays that cost for nothing. The
  pattern usually appears when a helper seals its own stores and a caller
  defensively flushes the same extent again. The analysis inlines callee
  persistence traces, so the diagnostic names the first flush even when it
  lives in a helper.

EXAMPLE FINDING
  crates/storage/src/nv/table.rs:712:14: [redundant-flush] line
  `region[off]` is flushed again by `flush` in `NvTable::seal_row`
  (table.rs:712) with no intervening store; the write-back is a no-op —
  drop it; path: flush `flush` in `seal` (table.rs:640) -> via call to
  `seal` in `NvTable::seal_row` (table.rs:710) -> flush `flush` in
  `NvTable::seal_row` (table.rs:712)

FIX PATTERN
  Delete the second flush and rely on the first:
      region.write_pod(off, &v)?;
      seal(region, off)?;   // already flushes `off`
      region.fence();
  If the helper's flush is conditional, hoist the condition instead of
  flushing unconditionally in both places."#,
    },
    RuleDoc {
        name: "dead-flush",
        text: r#"dead-flush — flush with no reaching store since the last fence

WHY
  After a fence, every earlier flushed store is durable. A flush issued
  with no store since that fence has no dirty line it could possibly
  write back — it is dead code that still occupies a write-back slot and
  serializes against real flushes in the same epoch. These survive
  refactors: the store the flush once covered moved or was deleted, and
  the flush stayed.

EXAMPLE FINDING
  crates/wal/src/lib.rs:204:14: [dead-flush] flush `flush` in
  `Wal::sync` (lib.rs:204) has no reaching store since the last fence;
  every line it could cover is already durable — delete it; path: fence
  `fence` in `Wal::sync` (lib.rs:201) -> flush `flush` in `Wal::sync`
  (lib.rs:204)

FIX PATTERN
  Delete the flush, or move it after the store it is meant to cover:
      region.write_pod(off, &v)?;
      region.flush(off, 8)?;    // covers the store above
      region.fence();"#,
    },
    RuleDoc {
        name: "fence-coalesce",
        text: r#"fence-coalesce — adjacent fences with no intervening flushed store

WHY
  sfence drains the store buffer; its cost is paid per instruction, not
  per line. Two fences with no flushed store between them drain an empty
  queue the second time. The common shape is `persist` (flush + fence)
  followed by an explicit `fence`, or two helpers that each fence
  back-to-back. One fence at the end of the batch gives the identical
  durability guarantee — this is the transformation behind batched
  commit stamping (fence once per table, not once per row).

EXAMPLE FINDING
  crates/txn/src/manager.rs:188:16: [fence-coalesce] fence `fence` in
  `TxnManager::commit` (manager.rs:188) follows fence `persist` in
  `TxnManager::commit` (manager.rs:186) with no intervening flushed
  store; the write-back queue is empty — coalesce into one fence; path:
  fence `persist` in `TxnManager::commit` (manager.rs:186) -> fence
  `fence` in `TxnManager::commit` (manager.rs:188)

FIX PATTERN
  Keep one fence per durability epoch:
      region.write_pod(a, &x)?;
      region.flush(a, 8)?;
      region.write_pod(b, &y)?;
      region.flush(b, 8)?;
      region.fence();            // one fence covers both lines
  When a helper already ends in `persist`, do not fence again in the
  caller."#,
    },
    RuleDoc {
        name: "read-path-purity",
        text: r#"read-path-purity — persistence primitive or lock reachable from a read-path root

WHY
  The instant-restart design keeps reads at DRAM speed: a scan or point
  lookup must never flush, fence, persist, or take a lock, or read
  latency inherits NVM write-back and writer-contention costs. A fn
  annotated `// pmlint: read-path` declares that contract; the gate walks
  its transitive callees and reports any persistence intrinsic or lock
  acquisition it can reach. Unresolved calls are assumed pure, so the
  gate never blocks on code outside the analyzed tree.

EXAMPLE FINDING
  crates/core/src/db.rs:641:18: [read-path-purity] read-path root
  `Db::scan_eq` reaches persistence primitive `persist` at
  crates/core/src/db.rs:641; the read path must issue zero persistence
  primitives and take no lock; path: `Db::scan_eq` -> `warm_cache`

FIX PATTERN
  Move the write work off the read path (defer cache warming to the
  writer or a maintenance task), and replace locks with seqlock-style
  optimistic reads:
      // pmlint: read-path
      pub fn scan_eq(&self, ...) -> Vec<Row> {
          loop {
              let s1 = self.seq.load(Ordering::Acquire);
              if s1 & 1 == 1 { continue; }
              let out = self.read_rows(...);
              if self.seq.load(Ordering::Acquire) == s1 { return out; }
          }
      }"#,
    },
];

/// Names of every rule with an `--explain` entry.
pub fn explained_rules() -> Vec<&'static str> {
    DOCS.iter().map(|d| d.name).collect()
}

/// The explanation text for `rule`, if it exists.
pub fn explain(rule: &str) -> Option<&'static str> {
    DOCS.iter().find(|d| d.name == rule).map(|d| d.text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_why_example_and_fix() {
        assert!(explained_rules().len() >= 20);
        for rule in explained_rules() {
            let text = explain(rule).unwrap();
            assert!(text.contains("WHY"), "{rule} missing WHY");
            assert!(text.contains("EXAMPLE FINDING"), "{rule} missing example");
            assert!(text.contains("FIX PATTERN"), "{rule} missing fix");
        }
    }

    #[test]
    fn unknown_rule_is_none() {
        assert!(explain("no-such-rule").is_none());
    }
}
