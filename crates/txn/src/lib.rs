#![warn(missing_docs)]

//! Snapshot-isolation MVCC transaction manager.
//!
//! The manager owns timestamp allocation and the transaction lifecycle; the
//! storage substrate (volatile or NVM) persists what its durability story
//! requires, and the *engine* supplies the durable commit publish through
//! [`CommitPublish`]:
//!
//! * Hyrise-NV backend — persist a single 8-byte global commit timestamp on
//!   NVM. Because every row timestamp written in step 2 was flushed before
//!   the publish, and recovery rolls back any row timestamp beyond the
//!   published CTS, the publish is the commit's atomic linearization point
//!   (the paper's ordering protocol).
//! * Log-based baseline — append a commit record to the WAL and sync.
//!
//! Isolation level: snapshot isolation. Readers use the snapshot taken at
//! `begin`; writers claim rows via pending end-timestamps (first claimant
//! wins, losers abort with a write conflict).

mod manager;
mod transaction;

pub use manager::{CommitPublish, NoopPublish, TxnManager};
pub use transaction::{Transaction, TxnState, WriteOp};

use std::fmt;

/// Errors raised by the transaction layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The underlying storage operation failed.
    Storage(storage::StorageError),
    /// The transaction is not in a state that allows the operation
    /// (e.g. writing after commit).
    BadState {
        /// State the transaction was found in.
        state: TxnState,
        /// Operation attempted.
        op: &'static str,
    },
    /// Commit-timestamp space exhausted (practically unreachable).
    TimestampOverflow,
    /// The durable commit publish failed (WAL append/sync or NVM persist).
    Publish(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Storage(e) => write!(f, "storage: {e}"),
            TxnError::BadState { state, op } => {
                write!(f, "transaction in state {state:?} cannot {op}")
            }
            TxnError::TimestampOverflow => write!(f, "commit timestamp space exhausted"),
            TxnError::Publish(m) => write!(f, "commit publish failed: {m}"),
        }
    }
}

impl std::error::Error for TxnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<storage::StorageError> for TxnError {
    fn from(e: storage::StorageError) -> Self {
        TxnError::Storage(e)
    }
}

/// Convenience result alias for transaction operations.
pub type Result<T> = std::result::Result<T, TxnError>;

/// True if the error is a write-write conflict (callers typically retry).
pub fn is_conflict(e: &TxnError) -> bool {
    matches!(
        e,
        TxnError::Storage(storage::StorageError::WriteConflict { .. })
    )
}
