//! The transaction manager: timestamps, commit, abort.

use storage::{TableStore, Value};

use crate::transaction::{Transaction, TxnState, WriteOp};
use crate::{Result, TxnError};

/// Engine-supplied durable publish of a commit timestamp. See the crate
/// docs for the two implementations (NVM 8-byte persist vs. WAL commit
/// record).
pub trait CommitPublish {
    /// Make commit timestamp `cts` durable. Called after every row
    /// timestamp of the transaction has been applied (and, for NVM,
    /// flushed). Once this returns, the transaction is committed.
    fn publish(&mut self, cts: u64, txn: &Transaction) -> Result<()>;
}

/// Publish that does nothing — for purely volatile operation (no
/// durability) and for unit tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopPublish;

impl CommitPublish for NoopPublish {
    fn publish(&mut self, _cts: u64, _txn: &Transaction) -> Result<()> {
        Ok(())
    }
}

/// Allocates transaction ids and commit timestamps and drives the
/// transaction lifecycle over a set of tables.
///
/// Volatile by design: after a restart the engine reconstructs it with
/// [`TxnManager::recovered`], passing the durably published last commit
/// timestamp.
#[derive(Debug)]
pub struct TxnManager {
    next_tid: u64,
    last_committed: u64,
    commits: u64,
    aborts: u64,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new()
    }
}

impl TxnManager {
    /// A fresh manager for an empty database.
    pub fn new() -> TxnManager {
        TxnManager {
            next_tid: 1,
            last_committed: 0,
            commits: 0,
            aborts: 0,
        }
    }

    /// Reconstruct after restart from the durably published CTS.
    pub fn recovered(last_committed: u64) -> TxnManager {
        TxnManager {
            next_tid: 1,
            last_committed,
            commits: 0,
            aborts: 0,
        }
    }

    /// Last committed (and published) timestamp — the snapshot new
    /// transactions receive.
    pub fn last_committed(&self) -> u64 {
        self.last_committed
    }

    /// Number of commits since construction.
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Number of aborts since construction.
    pub fn abort_count(&self) -> u64 {
        self.aborts
    }

    /// Start a transaction with a snapshot of the current committed state.
    pub fn begin(&mut self) -> Transaction {
        let tid = self.next_tid;
        self.next_tid += 1;
        Transaction::new(tid, self.last_committed)
    }

    /// Insert a row into `tables[table]` on behalf of `txn`.
    pub fn insert(
        &self,
        txn: &mut Transaction,
        tables: &mut [&mut dyn TableStore],
        table: usize,
        values: &[Value],
    ) -> Result<storage::RowId> {
        Self::require_active(txn, "insert")?;
        let row = tables[table].insert_version(values, txn.marker())?;
        txn.record_insert(table, row);
        Ok(row)
    }

    /// Delete (invalidate) a visible row version on behalf of `txn`.
    /// Fails with a write conflict if another transaction holds the row.
    pub fn delete(
        &self,
        txn: &mut Transaction,
        tables: &mut [&mut dyn TableStore],
        table: usize,
        row: storage::RowId,
    ) -> Result<()> {
        Self::require_active(txn, "delete")?;
        tables[table].try_invalidate(row, txn.marker())?;
        txn.record_invalidate(table, row);
        Ok(())
    }

    /// Update a visible row version: invalidate it and insert the new
    /// values as a fresh version. Returns the new version's row id.
    pub fn update(
        &self,
        txn: &mut Transaction,
        tables: &mut [&mut dyn TableStore],
        table: usize,
        row: storage::RowId,
        new_values: &[Value],
    ) -> Result<storage::RowId> {
        Self::require_active(txn, "update")?;
        tables[table].try_invalidate(row, txn.marker())?;
        txn.record_invalidate(table, row);
        let new_row = tables[table].insert_version(new_values, txn.marker())?;
        txn.record_insert(table, new_row);
        Ok(new_row)
    }

    /// Commit: stamp every write with the next CTS, durably publish it,
    /// then advance the visible committed state.
    pub fn commit(
        &mut self,
        txn: &mut Transaction,
        tables: &mut [&mut dyn TableStore],
        publish: &mut dyn CommitPublish,
    ) -> Result<u64> {
        Self::require_active(txn, "commit")?;
        let cts = self
            .last_committed
            .checked_add(1)
            .filter(|c| *c <= storage::mvcc::MAX_CTS)
            .ok_or(TxnError::TimestampOverflow)?;
        // Stamp every write without draining, then drain once per touched
        // table: W stamps cost one fence per table instead of one each.
        // The publish below happens-after every drain, so the ordering
        // contract (all stamps durable before the CTS is visible) holds.
        let mut touched: Vec<usize> = Vec::new();
        for w in &txn.writes {
            let table = match *w {
                WriteOp::Insert { table, row } => {
                    tables[table].stamp_insert(row, cts)?;
                    table
                }
                WriteOp::Invalidate { table, row } => {
                    tables[table].stamp_invalidate(row, cts)?;
                    table
                }
            };
            if !touched.contains(&table) {
                touched.push(table);
            }
        }
        for &table in &touched {
            tables[table].commit_fence()?;
        }
        publish.publish(cts, txn)?;
        self.last_committed = cts;
        self.commits += 1;
        txn.state = TxnState::Committed;
        Ok(cts)
    }

    /// Abort: undo every pending marker the transaction left behind.
    pub fn abort(
        &mut self,
        txn: &mut Transaction,
        tables: &mut [&mut dyn TableStore],
    ) -> Result<()> {
        Self::require_active(txn, "abort")?;
        // Undo in reverse order (newest first), mirroring classic undo.
        for w in txn.writes.iter().rev() {
            match *w {
                WriteOp::Insert { table, row } => tables[table].abort_insert(row)?,
                WriteOp::Invalidate { table, row } => tables[table].restore_end(row)?,
            }
        }
        self.aborts += 1;
        txn.state = TxnState::Aborted;
        Ok(())
    }

    fn require_active(txn: &Transaction, op: &'static str) -> Result<()> {
        if txn.is_active() {
            Ok(())
        } else {
            Err(TxnError::BadState {
                state: txn.state,
                op,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{ColumnDef, DataType, Schema, VTable};

    fn table() -> VTable {
        VTable::new(Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ]))
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn commit_makes_rows_visible_to_later_snapshots_only() {
        let mut t = table();
        let mut mgr = TxnManager::new();
        let mut tx1 = mgr.begin();
        {
            let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
            mgr.insert(&mut tx1, &mut tabs, 0, &row(1, 10)).unwrap();
        }
        // A concurrent reader does not see the uncommitted row.
        let tx2 = mgr.begin();
        assert!(t.scan_visible(tx2.snapshot, tx2.tid).unwrap().is_empty());
        // But tx1 sees its own write.
        assert_eq!(t.scan_visible(tx1.snapshot, tx1.tid).unwrap().len(), 1);
        {
            let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
            mgr.commit(&mut tx1, &mut tabs, &mut NoopPublish).unwrap();
        }
        // tx2's old snapshot still excludes it; a new one includes it.
        assert!(t.scan_visible(tx2.snapshot, tx2.tid).unwrap().is_empty());
        let tx3 = mgr.begin();
        assert_eq!(t.scan_visible(tx3.snapshot, tx3.tid).unwrap().len(), 1);
    }

    #[test]
    fn abort_undoes_inserts_and_invalidations() {
        let mut t = table();
        let mut mgr = TxnManager::new();
        // Seed one committed row.
        let mut tx = mgr.begin();
        let seeded = {
            let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
            let r = mgr.insert(&mut tx, &mut tabs, 0, &row(1, 10)).unwrap();
            mgr.commit(&mut tx, &mut tabs, &mut NoopPublish).unwrap();
            r
        };
        // A transaction that updates then aborts.
        let mut tx = mgr.begin();
        {
            let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
            mgr.update(&mut tx, &mut tabs, 0, seeded, &row(1, 20))
                .unwrap();
            mgr.abort(&mut tx, &mut tabs).unwrap();
        }
        let tx = mgr.begin();
        let vis = t.scan_visible(tx.snapshot, tx.tid).unwrap();
        assert_eq!(vis, vec![seeded]);
        assert_eq!(t.value(seeded, 1).unwrap(), Value::Int(10));
    }

    #[test]
    fn first_claimant_wins_conflict() {
        let mut t = table();
        let mut mgr = TxnManager::new();
        let mut tx = mgr.begin();
        let r = {
            let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
            let r = mgr.insert(&mut tx, &mut tabs, 0, &row(1, 10)).unwrap();
            mgr.commit(&mut tx, &mut tabs, &mut NoopPublish).unwrap();
            r
        };
        let mut tx_a = mgr.begin();
        let mut tx_b = mgr.begin();
        let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
        mgr.delete(&mut tx_a, &mut tabs, 0, r).unwrap();
        let err = mgr.delete(&mut tx_b, &mut tabs, 0, r).unwrap_err();
        assert!(crate::is_conflict(&err));
        // Loser aborts; winner commits.
        mgr.abort(&mut tx_b, &mut tabs).unwrap();
        mgr.commit(&mut tx_a, &mut tabs, &mut NoopPublish).unwrap();
        drop(tabs);
        let tx = mgr.begin();
        assert!(t.scan_visible(tx.snapshot, tx.tid).unwrap().is_empty());
    }

    #[test]
    fn lost_update_prevented() {
        // Classic SI lost-update: two txns read the same row, both try to
        // update; the second claimant must fail.
        let mut t = table();
        let mut mgr = TxnManager::new();
        let mut tx = mgr.begin();
        let r = {
            let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
            let r = mgr.insert(&mut tx, &mut tabs, 0, &row(1, 100)).unwrap();
            mgr.commit(&mut tx, &mut tabs, &mut NoopPublish).unwrap();
            r
        };
        let mut tx_a = mgr.begin();
        let mut tx_b = mgr.begin();
        let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
        mgr.update(&mut tx_a, &mut tabs, 0, r, &row(1, 101))
            .unwrap();
        assert!(crate::is_conflict(
            &mgr.update(&mut tx_b, &mut tabs, 0, r, &row(1, 102))
                .unwrap_err()
        ));
        mgr.commit(&mut tx_a, &mut tabs, &mut NoopPublish).unwrap();
        mgr.abort(&mut tx_b, &mut tabs).unwrap();
        drop(tabs);
        let tx = mgr.begin();
        let vis = t.scan_visible(tx.snapshot, tx.tid).unwrap();
        assert_eq!(vis.len(), 1);
        assert_eq!(t.value(vis[0], 1).unwrap(), Value::Int(101));
    }

    #[test]
    fn operations_rejected_after_commit() {
        let mut t = table();
        let mut mgr = TxnManager::new();
        let mut tx = mgr.begin();
        let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
        mgr.commit(&mut tx, &mut tabs, &mut NoopPublish).unwrap();
        assert!(matches!(
            mgr.insert(&mut tx, &mut tabs, 0, &row(1, 1)),
            Err(TxnError::BadState { .. })
        ));
        assert!(matches!(
            mgr.commit(&mut tx, &mut tabs, &mut NoopPublish),
            Err(TxnError::BadState { .. })
        ));
    }

    #[test]
    fn counters_track_outcomes() {
        let mut t = table();
        let mut mgr = TxnManager::new();
        let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
        for i in 0..4 {
            let mut tx = mgr.begin();
            mgr.insert(&mut tx, &mut tabs, 0, &row(i, i)).unwrap();
            if i % 2 == 0 {
                mgr.commit(&mut tx, &mut tabs, &mut NoopPublish).unwrap();
            } else {
                mgr.abort(&mut tx, &mut tabs).unwrap();
            }
        }
        assert_eq!(mgr.commit_count(), 2);
        assert_eq!(mgr.abort_count(), 2);
        assert_eq!(mgr.last_committed(), 2);
    }

    #[test]
    fn read_your_own_writes_within_txn() {
        let mut t = table();
        let mut mgr = TxnManager::new();
        let mut tx = mgr.begin();
        let mut tabs: Vec<&mut dyn TableStore> = vec![&mut t];
        let r = mgr.insert(&mut tx, &mut tabs, 0, &row(5, 50)).unwrap();
        drop(tabs);
        let vis = t.scan_eq(0, &Value::Int(5), tx.snapshot, tx.tid).unwrap();
        assert_eq!(vis, vec![r]);
    }
}
