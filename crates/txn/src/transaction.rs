//! Per-transaction state.

use storage::RowId;

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Open and accepting operations.
    Active,
    /// Successfully committed.
    Committed,
    /// Rolled back (by the user or after a conflict).
    Aborted,
}

/// One entry in a transaction's write set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// A new version this transaction inserted.
    Insert {
        /// Table the row belongs to (engine-assigned index).
        table: usize,
        /// Physical row id of the new version.
        row: RowId,
    },
    /// A version this transaction invalidated (the delete half of an update,
    /// or a plain delete).
    Invalidate {
        /// Table the row belongs to.
        table: usize,
        /// Physical row id of the invalidated version.
        row: RowId,
    },
}

/// A transaction handle: identity, snapshot, and write set.
///
/// The handle itself performs no storage access; the engine (or the
/// [`crate::TxnManager`] helpers) applies operations to tables and records
/// them here so commit/abort can walk the write set.
#[derive(Debug)]
pub struct Transaction {
    /// Transaction id, embedded into pending MVCC markers.
    pub tid: u64,
    /// Snapshot timestamp: the transaction sees exactly the versions
    /// committed at or before this CTS (plus its own writes).
    pub snapshot: u64,
    /// Ordered write set.
    pub writes: Vec<WriteOp>,
    /// Lifecycle state.
    pub state: TxnState,
}

impl Transaction {
    pub(crate) fn new(tid: u64, snapshot: u64) -> Transaction {
        Transaction {
            tid,
            snapshot,
            writes: Vec::new(),
            state: TxnState::Active,
        }
    }

    /// The pending MVCC marker this transaction stamps on rows it touches.
    pub fn marker(&self) -> u64 {
        storage::mvcc::pending(self.tid)
    }

    /// True while the transaction accepts operations.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Record an insert in the write set.
    pub fn record_insert(&mut self, table: usize, row: RowId) {
        self.writes.push(WriteOp::Insert { table, row });
    }

    /// Record an invalidation in the write set.
    pub fn record_invalidate(&mut self, table: usize, row: RowId) {
        self.writes.push(WriteOp::Invalidate { table, row });
    }

    /// Number of recorded write operations.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// True if the transaction performed no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_carries_tid() {
        let t = Transaction::new(17, 5);
        assert!(storage::mvcc::is_pending(t.marker()));
        assert_eq!(storage::mvcc::pending_owner(t.marker()), 17);
    }

    #[test]
    fn write_set_accumulates_in_order() {
        let mut t = Transaction::new(1, 0);
        assert!(t.is_read_only());
        t.record_insert(0, 10);
        t.record_invalidate(1, 3);
        assert_eq!(t.write_count(), 2);
        assert_eq!(
            t.writes,
            vec![
                WriteOp::Insert { table: 0, row: 10 },
                WriteOp::Invalidate { table: 1, row: 3 }
            ]
        );
    }
}
