//! Engine configuration.

use std::path::PathBuf;

use nvm::LatencyModel;

/// Which index structure to create.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash group-key index (point lookups). On the NVM backend this is a
    /// persistent multi-version index; on the others it is a rebuilt DRAM
    /// index.
    Hash,
    /// Ordered group-key index (range lookups). On the NVM backend this is
    /// a persistent crash-safe skip list (re-attached on restart); on the
    /// others a DRAM B-tree map rebuilt after recovery.
    Ordered,
}

/// Configuration of the log-based baseline.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory for `wal.log` / `checkpoint.bin`.
    pub dir: PathBuf,
    /// Simulated latency charged per log sync (group commit boundary).
    pub sync_latency_ns: u64,
    /// Sync the log every N commits (1 = every commit durable immediately;
    /// larger values model group commit).
    pub sync_every_n_commits: u32,
}

impl WalConfig {
    /// A config rooted at a fresh unique directory under the system temp
    /// dir, syncing every commit with a 10 µs simulated sync.
    pub fn temp() -> WalConfig {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        WalConfig {
            dir: std::env::temp_dir().join(format!("hyrise-nv-wal-{}-{n}", std::process::id())),
            sync_latency_ns: 10_000,
            sync_every_n_commits: 1,
        }
    }
}

/// Durability backend selection.
#[derive(Debug, Clone)]
pub enum DurabilityConfig {
    /// Hyrise-NV: all primary data on simulated NVM.
    Nvm {
        /// NVM region capacity in bytes.
        capacity: u64,
        /// Latency model charged by persistence primitives.
        latency: LatencyModel,
    },
    /// Hyrise-NV plus a shadow write-ahead log: primary data on simulated
    /// NVM exactly as [`DurabilityConfig::Nvm`], with every transaction also
    /// logged to a file-backed WAL that is synced *before* the NVM commit
    /// publish. The shadow log is never read on the fast restart path; it
    /// exists solely as recovery rung 2 — when a table's NVM image fails
    /// media verification, the engine rebuilds that table by bounded log
    /// replay instead of losing it.
    NvmWithWal {
        /// NVM region capacity in bytes.
        capacity: u64,
        /// Latency model charged by persistence primitives.
        latency: LatencyModel,
        /// Shadow-log location and sync cost (charged to the same simulated
        /// clock as the NVM primitives).
        wal: WalConfig,
    },
    /// Hyrise-NV on a real file: all primary data in a `MAP_SHARED` mmap
    /// of `path`, the engine's first durability backend whose bytes
    /// survive actual process death. Fences become `msync(MS_SYNC)` over
    /// the flushed lines. With `wal: Some(..)`, a shadow write-ahead log
    /// rides along exactly as in [`DurabilityConfig::NvmWithWal`],
    /// providing recovery rung 2 for media damage in the file.
    NvmFile {
        /// Path of the backing file (created and grown on first open).
        path: PathBuf,
        /// Region capacity in bytes.
        capacity: u64,
        /// Latency model charged by persistence primitives.
        latency: LatencyModel,
        /// Optional shadow log (rung-2 media recovery).
        wal: Option<WalConfig>,
    },
    /// Log-based baseline: DRAM tables + WAL + checkpoints.
    Wal(WalConfig),
    /// No durability (upper-bound throughput reference).
    Volatile,
}

impl DurabilityConfig {
    /// 256 MiB NVM region with PCM-flavoured latencies.
    pub fn nvm_default() -> DurabilityConfig {
        DurabilityConfig::Nvm {
            capacity: 256 << 20,
            latency: LatencyModel::pcm(),
        }
    }

    /// NVM region with explicit capacity and latency.
    pub fn nvm(capacity: u64, latency: LatencyModel) -> DurabilityConfig {
        DurabilityConfig::Nvm { capacity, latency }
    }

    /// WAL baseline in a fresh temp directory.
    pub fn wal_temp() -> DurabilityConfig {
        DurabilityConfig::Wal(WalConfig::temp())
    }

    /// NVM region plus a shadow WAL in a fresh temp directory.
    pub fn nvm_with_wal(capacity: u64, latency: LatencyModel) -> DurabilityConfig {
        DurabilityConfig::NvmWithWal {
            capacity,
            latency,
            wal: WalConfig::temp(),
        }
    }

    /// File-backed NVM region at `path` (no shadow WAL).
    pub fn nvm_file(
        path: impl Into<PathBuf>,
        capacity: u64,
        latency: LatencyModel,
    ) -> DurabilityConfig {
        DurabilityConfig::NvmFile {
            path: path.into(),
            capacity,
            latency,
            wal: None,
        }
    }

    /// File-backed NVM region at `path` plus a shadow WAL in a fresh temp
    /// directory.
    pub fn nvm_file_with_wal(
        path: impl Into<PathBuf>,
        capacity: u64,
        latency: LatencyModel,
    ) -> DurabilityConfig {
        DurabilityConfig::NvmFile {
            path: path.into(),
            capacity,
            latency,
            wal: Some(WalConfig::temp()),
        }
    }

    /// Short name used in reports.
    pub fn mode_name(&self) -> &'static str {
        match self {
            DurabilityConfig::Nvm { .. } => "nvm",
            DurabilityConfig::NvmWithWal { .. } => "nvm+wal",
            DurabilityConfig::NvmFile { wal: None, .. } => "nvm-file",
            DurabilityConfig::NvmFile { wal: Some(_), .. } => "nvm-file+wal",
            DurabilityConfig::Wal(_) => "wal",
            DurabilityConfig::Volatile => "volatile",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names() {
        assert_eq!(DurabilityConfig::nvm_default().mode_name(), "nvm");
        assert_eq!(DurabilityConfig::wal_temp().mode_name(), "wal");
        assert_eq!(DurabilityConfig::Volatile.mode_name(), "volatile");
    }

    #[test]
    fn temp_dirs_unique() {
        assert_ne!(WalConfig::temp().dir, WalConfig::temp().dir);
    }
}
