//! The log-based baseline backend: DRAM tables + WAL + checkpoints +
//! rebuilt DRAM indexes.

use std::sync::Arc;

use index::{VolatileHashIndex, VolatileOrderedIndex};
use nvm::SimClock;
use storage::{Schema, TableStore, VTable, Value};
use wal::{LogRecord, LogWriter, WalPaths};

use crate::config::{IndexKind, WalConfig};
use crate::error::{EngineError, Result};

/// Per-table DRAM index sets (all rebuilt on restart).
pub(crate) struct WalTableIndexes {
    pub hash: Vec<VolatileHashIndex>,
    pub ordered: Vec<VolatileOrderedIndex>,
}

/// The WAL durability backend.
pub struct WalBackend {
    pub(crate) cfg: WalConfig,
    pub(crate) paths: WalPaths,
    pub(crate) clock: Arc<SimClock>,
    pub(crate) tables: Vec<VTable>,
    pub(crate) names: Vec<String>,
    pub(crate) writer: LogWriter,
    pub(crate) indexes: Vec<WalTableIndexes>,
    /// Index DDL (table, column, kind) — conceptually part of the durable
    /// catalogue; kept here so restarts rebuild the same indexes.
    pub(crate) index_specs: Vec<(usize, usize, IndexKind)>,
    /// Commits since the last log sync (group commit window).
    pub(crate) commits_since_sync: u32,
}

impl WalBackend {
    /// Create a fresh baseline database in `cfg.dir` (files truncated).
    pub fn create(cfg: WalConfig) -> Result<WalBackend> {
        let paths = WalPaths::new(&cfg.dir).map_err(wal::WalError::Io)?;
        let _ = std::fs::remove_file(paths.log());
        let _ = std::fs::remove_file(paths.checkpoint());
        let clock = Arc::new(SimClock::new());
        let writer = LogWriter::open(&paths.log(), clock.clone(), cfg.sync_latency_ns)?;
        Ok(WalBackend {
            cfg,
            paths,
            clock,
            tables: Vec::new(),
            names: Vec::new(),
            writer,
            indexes: Vec::new(),
            index_specs: Vec::new(),
            commits_since_sync: 0,
        })
    }

    /// The simulated-time clock charged by log syncs.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Log activity counters.
    pub fn wal_stats(&self) -> wal::WalStats {
        self.writer.stats()
    }

    /// Create a table. The schema becomes durable through an immediate
    /// checkpoint (the baseline's DDL persistence).
    pub fn create_table(&mut self, name: &str, schema: Schema, last_cts: u64) -> Result<usize> {
        if self.names.iter().any(|n| n == name) {
            return Err(EngineError::Catalog(format!(
                "duplicate table name {name:?}"
            )));
        }
        self.tables.push(VTable::new(schema));
        self.names.push(name.to_owned());
        self.indexes.push(WalTableIndexes {
            hash: Vec::new(),
            ordered: Vec::new(),
        });
        self.checkpoint(last_cts)?;
        Ok(self.tables.len() - 1)
    }

    /// Write a checkpoint covering the current log position.
    pub fn checkpoint(&mut self, last_cts: u64) -> Result<u64> {
        // Everything buffered must be on disk before the checkpoint can
        // claim to cover it.
        self.writer.sync()?;
        let named: Vec<(String, &VTable)> =
            self.names.iter().cloned().zip(self.tables.iter()).collect();
        let bytes = wal::write_checkpoint(
            &self.paths.checkpoint(),
            &named,
            last_cts,
            self.writer.position(),
        )?;
        Ok(bytes)
    }

    /// Append a redo record for an insert (durable at the next sync).
    pub fn log_insert(&mut self, tid: u64, table: usize, row: u64, values: &[Value]) -> Result<()> {
        self.writer.append(&LogRecord::Insert {
            tid,
            table: table as u32,
            row,
            values: values.to_vec(),
        })?;
        Ok(())
    }

    /// Append a redo record for an invalidation.
    pub fn log_invalidate(&mut self, tid: u64, table: usize, row: u64) -> Result<()> {
        self.writer.append(&LogRecord::Invalidate {
            tid,
            table: table as u32,
            row,
        })?;
        Ok(())
    }

    /// Append an abort record (no sync required).
    pub fn log_abort(&mut self, tid: u64) -> Result<()> {
        self.writer.append(&LogRecord::Abort { tid })?;
        Ok(())
    }

    /// Append a commit record and sync according to the group-commit
    /// window.
    pub fn log_commit(&mut self, tid: u64, cts: u64) -> Result<()> {
        self.writer.append(&LogRecord::Commit { tid, cts })?;
        self.commits_since_sync += 1;
        if self.commits_since_sync >= self.cfg.sync_every_n_commits.max(1) {
            self.writer.sync()?;
            self.commits_since_sync = 0;
        }
        Ok(())
    }

    /// Merge a table: logged (so replay reproduces row ids), then executed,
    /// then DRAM indexes rebuilt.
    pub fn merge_table(&mut self, table: usize, snapshot: u64) -> Result<storage::MergeStats> {
        self.writer.append(&LogRecord::Merge {
            table: table as u32,
            cts: snapshot,
        })?;
        self.writer.sync()?;
        let stats = self.tables[table].merge(snapshot)?;
        self.rebuild_indexes_for(table)?;
        Ok(stats)
    }

    /// Register an index; populated immediately, rebuilt on every restart.
    pub fn create_index(&mut self, table: usize, column: usize, kind: IndexKind) -> Result<()> {
        match kind {
            IndexKind::Hash => {
                let mut idx = VolatileHashIndex::new(column);
                idx.rebuild(&self.tables[table])?;
                self.indexes[table].hash.push(idx);
            }
            IndexKind::Ordered => {
                let mut idx = VolatileOrderedIndex::new(column);
                idx.rebuild(&self.tables[table])?;
                self.indexes[table].ordered.push(idx);
            }
        }
        self.index_specs.push((table, column, kind));
        Ok(())
    }

    /// Notify indexes of a new row version.
    pub fn index_insert(&mut self, table: usize, values: &[Value], row: u64) {
        for idx in &mut self.indexes[table].hash {
            let c = idx.column();
            idx.insert(&values[c], row);
        }
        for idx in &mut self.indexes[table].ordered {
            let c = idx.column();
            idx.insert(&values[c], row);
        }
    }

    /// Rebuild every index of `table` (post-merge, post-restart).
    pub fn rebuild_indexes_for(&mut self, table: usize) -> Result<()> {
        for idx in &mut self.indexes[table].hash {
            idx.rebuild(&self.tables[table])?;
        }
        for idx in &mut self.indexes[table].ordered {
            idx.rebuild(&self.tables[table])?;
        }
        Ok(())
    }
}
