#![warn(missing_docs)]

//! Hyrise-NV: an in-memory columnar database storage engine with instant
//! restarts from (simulated) non-volatile memory.
//!
//! Reproduction of *Schwalb, Faust, Dreseler, Flemming, Plattner:
//! "Leveraging non-volatile memory for instant restarts of in-memory
//! database systems"*, ICDE 2016.
//!
//! The [`Database`] façade runs the same columnar main/delta storage and
//! snapshot-isolation MVCC over three interchangeable durability backends:
//!
//! | backend | primary data | durability | restart cost |
//! |---|---|---|---|
//! | [`DurabilityConfig::Nvm`] | on simulated NVM | flush/fence ordering | **O(metadata)** — map heap, rebuild probe maps, undo pass |
//! | [`DurabilityConfig::Wal`] | DRAM | redo log + checkpoints | **O(data)** — load checkpoint, replay log, rebuild indexes |
//! | [`DurabilityConfig::Volatile`] | DRAM | none | total data loss |
//!
//! ```
//! use hyrise_nv::{Database, DurabilityConfig};
//! use storage::{ColumnDef, DataType, Schema, Value};
//!
//! let mut db = Database::create(DurabilityConfig::nvm_default()).unwrap();
//! let t = db
//!     .create_table(
//!         "accounts",
//!         Schema::new(vec![
//!             ColumnDef::new("id", DataType::Int),
//!             ColumnDef::new("balance", DataType::Double),
//!         ]),
//!     )
//!     .unwrap();
//! let mut tx = db.begin();
//! db.insert(&mut tx, t, &[Value::Int(1), Value::Double(100.0)]).unwrap();
//! db.commit(&mut tx).unwrap();
//!
//! // Power failure + instant restart: committed data is back immediately.
//! let report = db.restart_after_crash().unwrap();
//! assert!(report.mode == "nvm");
//! let tx = db.begin();
//! assert_eq!(db.scan_all(&tx, t).unwrap().len(), 1);
//! ```

mod backend_nv;
mod backend_vol;
mod backend_wal;
mod config;
mod db;
mod error;
mod health;
mod query;
mod report;
mod shadow_wal;
pub mod torture;
mod txn_registry;

pub use backend_nv::NvBackend;
pub use backend_vol::VolatileBackend;
pub use backend_wal::WalBackend;
pub use config::{DurabilityConfig, IndexKind, WalConfig};
pub use db::{retry_write, Database, TableId};
pub use error::{is_conflict, EngineError, Result};
pub use health::{HealthReport, HealthState, ReclaimReport, Watermarks};
pub use query::{Agg, AggRow};
pub use report::{IntegrityReport, PersistStats, PhaseTiming, RecoveryReport};
pub use txn_registry::{RegistryRecovery, TxnRegistry, REGISTRY_SLOTS};

/// Maximum number of tables the persistent catalogue supports.
pub const MAX_TABLES: usize = 32;
/// Maximum number of indexes per table in the persistent catalogue.
pub const MAX_INDEXES_PER_TABLE: usize = 8;
