//! Recovery reporting: per-phase wall-clock and simulated-time breakdown,
//! plus the post-recovery integrity verdict used by the crash-torture
//! harness.

use std::time::Duration;

use nvm::{CrashOutcome, LintFinding};

use crate::health::HealthState;

/// Persist traffic charged to one restart phase: how much the phase wrote
/// to NVM and how many flush/fence round trips it needed. Attributes
/// restart cost to recovery phases (all zero on the file-backed paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Bytes stored into the region during the phase.
    pub bytes_written: u64,
    /// Flush calls issued.
    pub flushes: u64,
    /// Dirty cache lines actually written back.
    pub lines_flushed: u64,
    /// Store fences issued.
    pub fences: u64,
}

impl PersistStats {
    /// Componentwise difference against an earlier probe.
    pub fn since(&self, earlier: &PersistStats) -> PersistStats {
        PersistStats {
            bytes_written: self.bytes_written - earlier.bytes_written,
            flushes: self.flushes - earlier.flushes,
            lines_flushed: self.lines_flushed - earlier.lines_flushed,
            fences: self.fences - earlier.fences,
        }
    }

    /// True when the phase produced no persist traffic at all.
    pub fn is_zero(&self) -> bool {
        *self == PersistStats::default()
    }
}

/// One timed restart phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (e.g. "allocator scan", "log replay").
    pub name: &'static str,
    /// Real elapsed time.
    pub wall: Duration,
    /// Simulated NVM/IO nanoseconds charged during the phase.
    pub simulated_ns: u64,
    /// Persist traffic the phase generated.
    pub persist: PersistStats,
}

/// What a restart did and how long each phase took. Experiment E6 prints
/// this; experiment E1 uses [`RecoveryReport::total_wall`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Backend that performed the restart ("nvm" / "wal" / "volatile").
    pub mode: &'static str,
    /// Timed phases in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Rows present (visible or not) after recovery, across tables.
    pub rows_recovered: u64,
    /// Log records replayed (WAL) — 0 for NVM.
    pub log_records_replayed: u64,
    /// MVCC words repaired by the undo pass (NVM) — 0 for WAL.
    pub mvcc_words_repaired: u64,
    /// Heap blocks scanned by allocator recovery (NVM).
    pub heap_blocks_scanned: u64,
    /// Indexes rebuilt (WAL/ordered) vs re-attached (NVM hash).
    pub indexes_rebuilt: u64,
    /// Indexes re-attached without rebuild.
    pub indexes_attached: u64,
    /// Last durable commit timestamp restored.
    pub last_cts: u64,
    /// Highest recovery-ladder rung climbed: 0 = plain remap, 1 = retries
    /// and/or index rebuilds repaired everything, 2 = at least one table
    /// came back through shadow-WAL replay.
    pub rung: u8,
    /// Bounded retries spent re-reading transiently poisoned lines.
    pub poison_retries: u64,
    /// Corrupt NVM structures left allocated but unreachable (old table
    /// trees and index structures replaced by rebuilds).
    pub blocks_quarantined: u64,
    /// Structures rebuilt by the ladder (tables via WAL replay, indexes via
    /// `build_from`).
    pub structures_rebuilt: u64,
    /// Persistent structures that passed media verification (checksummed
    /// extents plus timestamp-plausibility checks).
    pub media_structures_verified: u64,
    /// The scheduled-crash outcome, when the restart came through
    /// [`crate::Database::restart_scheduled`] (None for policy crashes).
    pub scheduled: Option<CrashOutcome>,
    /// Missing-flush bugs the persist-trace linter caught during this
    /// recovery: reads of bytes whose last store never reached the medium.
    /// Only populated on scheduled-crash restarts.
    pub lint_findings: Vec<LintFinding>,
    /// Health state derived from the recovered heap (a restart near the
    /// brim comes back degraded, not pretending to be healthy).
    pub health: HealthState,
    /// Heap utilization after recovery (0.0 off the NVM backend).
    pub utilization: f64,
    /// True if the previous process set the clean-shutdown marker (graceful
    /// SIGTERM path): no transaction was in flight, so the mvcc undo pass
    /// was skipped. Always false after a hard crash.
    pub clean_shutdown: bool,
    /// Recovery attempt number read from the persistent progress word as
    /// this recovery began: 1 = clean first attempt, >1 = re-entrant (an
    /// earlier attempt was itself cut short by a crash), 0 = not
    /// applicable (non-NVM backends, or no catalogue to account against).
    pub attempt: u64,
}

impl RecoveryReport {
    /// Total wall-clock restart time.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// Total simulated nanoseconds charged during the restart.
    pub fn total_simulated_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.simulated_ns).sum()
    }

    /// Render the phase table as human-readable lines.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "restart [{}]: {:?} wall, {} rows, last_cts={}, rung {}, health {} ({:.1}%)",
            self.mode,
            self.total_wall(),
            self.rows_recovered,
            self.last_cts,
            self.rung,
            self.health,
            self.utilization * 100.0
        );
        if self.poison_retries + self.blocks_quarantined + self.structures_rebuilt > 0 {
            let _ = writeln!(
                s,
                "  ladder: {} poison retries, {} structures rebuilt, {} blocks quarantined",
                self.poison_retries, self.structures_rebuilt, self.blocks_quarantined
            );
        }
        if self.attempt > 1 {
            let _ = writeln!(s, "  re-entrant: recovery attempt #{}", self.attempt);
        }
        for p in &self.phases {
            if p.persist.is_zero() {
                let _ = writeln!(
                    s,
                    "  {:<28} {:>12?}  (+{} sim-ns)",
                    p.name, p.wall, p.simulated_ns
                );
            } else {
                let _ = writeln!(
                    s,
                    "  {:<28} {:>12?}  (+{} sim-ns, {}B stored, {} flushes/{} lines, {} fences)",
                    p.name,
                    p.wall,
                    p.simulated_ns,
                    p.persist.bytes_written,
                    p.persist.flushes,
                    p.persist.lines_flushed,
                    p.persist.fences
                );
            }
        }
        for f in &self.lint_findings {
            let _ = writeln!(s, "  LINT: {f}");
        }
        s
    }
}

/// Post-recovery integrity verdict composing the torture harness's
/// structural invariants: allocator state, MVCC cleanliness at the durable
/// watermark, and index↔table agreement. Built by
/// [`crate::Database::verify_integrity`].
#[derive(Debug, Clone, Default)]
pub struct IntegrityReport {
    /// Heap blocks walked (NVM backend only).
    pub heap_blocks: u64,
    /// Blocks still stuck mid-protocol (`Reserved`/`Activating`/
    /// `Deactivating`) — allocator recovery must leave none.
    pub heap_limbo_blocks: u64,
    /// MVCC timestamp check folded across all tables.
    pub mvcc: storage::MvccCheck,
    /// Index↔table agreement folded across all persistent indexes.
    pub index: index::IndexCheck,
    /// The durable commit watermark the checks ran against.
    pub last_cts: u64,
    /// Health state at verification time (informational — does not affect
    /// [`IntegrityReport::is_clean`]; a degraded engine can be perfectly
    /// consistent).
    pub health: HealthState,
    /// Heap utilization at verification time (0.0 off the NVM backend).
    pub utilization: f64,
}

impl IntegrityReport {
    /// True when every invariant holds.
    pub fn is_clean(&self) -> bool {
        self.heap_limbo_blocks == 0 && self.mvcc.is_clean() && self.index.is_clean()
    }

    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "integrity@cts={} [{} {:.1}%]: {} heap blocks ({} limbo), \
             {} rows ({} pending, {} future), \
             {} index entries ({} dangling, {} stale, {} missing) => {}",
            self.last_cts,
            self.health,
            self.utilization * 100.0,
            self.heap_blocks,
            self.heap_limbo_blocks,
            self.mvcc.rows,
            self.mvcc.pending_markers,
            self.mvcc.future_timestamps,
            self.index.entries,
            self.index.dangling,
            self.index.stale_keys,
            self.index.missing_rows,
            if self.is_clean() { "CLEAN" } else { "VIOLATED" }
        )
    }
}

/// Helper to time a phase: runs `f`, records wall time plus the
/// simulated-ns and persist-traffic deltas observed through `probe`
/// around the call.
pub(crate) fn timed_phase<T, E>(
    phases: &mut Vec<PhaseTiming>,
    name: &'static str,
    probe: impl Fn() -> (u64, PersistStats),
    f: impl FnOnce() -> std::result::Result<T, E>,
) -> std::result::Result<T, E> {
    let (sim0, persist0) = probe();
    let t0 = std::time::Instant::now();
    let out = f()?;
    let (sim1, persist1) = probe();
    phases.push(PhaseTiming {
        name,
        wall: t0.elapsed(),
        simulated_ns: sim1 - sim0,
        persist: persist1.since(&persist0),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_phases() {
        let mut r = RecoveryReport {
            mode: "nvm",
            ..Default::default()
        };
        r.phases.push(PhaseTiming {
            name: "a",
            wall: Duration::from_millis(2),
            simulated_ns: 10,
            persist: PersistStats::default(),
        });
        r.phases.push(PhaseTiming {
            name: "b",
            wall: Duration::from_millis(3),
            simulated_ns: 5,
            persist: PersistStats {
                bytes_written: 64,
                flushes: 2,
                lines_flushed: 1,
                fences: 2,
            },
        });
        assert_eq!(r.total_wall(), Duration::from_millis(5));
        assert_eq!(r.total_simulated_ns(), 15);
        assert!(r.render().contains("restart [nvm]"));
    }

    #[test]
    fn timed_phase_records() {
        let mut phases = Vec::new();
        let out: Result<u32, ()> = timed_phase(
            &mut phases,
            "work",
            || (7, PersistStats::default()),
            || Ok(42),
        );
        assert_eq!(out.unwrap(), 42);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "work");
        assert_eq!(phases[0].simulated_ns, 0);
        assert!(phases[0].persist.is_zero());
    }
}
