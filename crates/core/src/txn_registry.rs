//! Persistent in-flight transaction registry.
//!
//! The naive post-crash undo pass scans *every* MVCC timestamp word to find
//! effects of unpublished transactions — work linear in table size, which
//! would undermine the paper's size-independent restart. Hyrise-NV instead
//! keeps per-transaction write sets on NVM; recovery then repairs only the
//! rows touched by transactions in flight at the crash.
//!
//! Layout:
//!
//! ```text
//! Registry block: SLOTS × (tid u64 | nwrites u64 | writes_ptr u64)
//! Writes block:   capacity-managed array of 16-byte entries:
//!                 word0 = table << 8 | kind   (kind 0 = insert, 1 = invalidate)
//!                 word1 = row
//! ```
//!
//! Protocol (write-ahead with respect to the table operation):
//!
//! 1. on a transaction's first write, claim a slot and durably store its
//!    tid;
//! 2. before *each* table write, append the (table, row, kind) entry and
//!    durably bump `nwrites` — the entry may thus reference a row the crash
//!    prevented from materializing, which recovery skips;
//! 3. after the commit publish (or after abort undo), durably clear the
//!    slot.
//!
//! Recovery walks the (bounded) slot array; for each occupied slot it
//! repairs exactly the referenced rows, idempotently: pending markers and
//! timestamps beyond the published CTS roll back, everything else is left
//! alone (the slot may have been cleared *after* a successful publish).

use std::collections::HashMap;

use nvm::NvmHeap;
use storage::nv::NvTable;
use storage::TableStore;

use crate::error::{EngineError, Result};

/// Number of concurrently writing transactions the registry supports.
pub const REGISTRY_SLOTS: u64 = 64;

const SLOT_SIZE: u64 = 24;
const S_TID: u64 = 0;
const S_NWRITES: u64 = 8;
const S_WRITES: u64 = 16;

const ENTRY_SIZE: u64 = 16;
const INITIAL_ENTRIES: u64 = 16;

const KIND_INSERT: u64 = 0;
const KIND_INVALIDATE: u64 = 1;

/// The registry handle (volatile part: tid → slot map and cached
/// capacities).
pub struct TxnRegistry {
    heap: NvmHeap,
    base: u64,
    /// tid → slot index for active transactions.
    active: HashMap<u64, u64>,
    /// Cached per-slot writes-block capacity (entries).
    caps: Vec<u64>,
}

/// What the registry's recovery pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryRecovery {
    /// Occupied slots found (transactions in flight at the crash).
    pub inflight_txns: u64,
    /// Write entries walked.
    pub entries_walked: u64,
    /// MVCC words actually repaired.
    pub repaired: u64,
}

impl TxnRegistry {
    /// Allocate and zero a fresh registry; returns the handle. The block
    /// offset is stored by the caller (catalogue).
    pub fn create(heap: &NvmHeap) -> Result<TxnRegistry> {
        let base = heap.alloc(REGISTRY_SLOTS * SLOT_SIZE)?;
        let region = heap.region();
        for s in 0..REGISTRY_SLOTS {
            region.write_pod(base + s * SLOT_SIZE + S_TID, &0u64)?;
            region.write_pod(base + s * SLOT_SIZE + S_NWRITES, &0u64)?;
            region.write_pod(base + s * SLOT_SIZE + S_WRITES, &0u64)?;
        }
        region.persist(base, REGISTRY_SLOTS * SLOT_SIZE)?;
        Ok(TxnRegistry {
            heap: heap.clone(),
            base,
            active: HashMap::new(),
            caps: vec![0; REGISTRY_SLOTS as usize],
        })
    }

    /// Re-attach after restart (after [`TxnRegistry::recover`] has run the
    /// slots are all clear).
    pub fn open(heap: &NvmHeap, base: u64) -> Result<TxnRegistry> {
        let region = heap.region();
        let mut caps = vec![0u64; REGISTRY_SLOTS as usize];
        for (s, cap) in caps.iter_mut().enumerate() {
            let writes: u64 = region.read_pod(base + s as u64 * SLOT_SIZE + S_WRITES)?;
            *cap = if writes == 0 {
                0
            } else {
                heap.payload_capacity(writes)? / ENTRY_SIZE
            };
        }
        Ok(TxnRegistry {
            heap: heap.clone(),
            base,
            active: HashMap::new(),
            caps,
        })
    }

    /// Block offset (for the catalogue).
    pub fn base_offset(&self) -> u64 {
        self.base
    }

    fn slot_off(&self, slot: u64) -> u64 {
        self.base + slot * SLOT_SIZE
    }

    fn claim(&mut self, tid: u64) -> Result<u64> {
        if let Some(&slot) = self.active.get(&tid) {
            return Ok(slot);
        }
        let used: std::collections::HashSet<u64> = self.active.values().copied().collect();
        let slot = (0..REGISTRY_SLOTS)
            .find(|s| !used.contains(s))
            .ok_or_else(|| {
                EngineError::Catalog(format!(
                    "more than {REGISTRY_SLOTS} concurrently writing transactions"
                ))
            })?;
        let region = self.heap.region().clone();
        let off = self.slot_off(slot);
        // Writes block allocated lazily, then kept across slot reuses.
        if self.caps[slot as usize] == 0 {
            let writes = self.heap.reserve(INITIAL_ENTRIES * ENTRY_SIZE)?;
            self.heap
                .activate(writes, Some((off + S_WRITES, writes)), None)?;
            self.caps[slot as usize] = INITIAL_ENTRIES;
        }
        region.write_pod(off + S_NWRITES, &0u64)?;
        region.write_pod(off + S_TID, &tid)?;
        region.persist(off, SLOT_SIZE)?;
        self.active.insert(tid, slot);
        Ok(slot)
    }

    fn append(&mut self, tid: u64, table: usize, row: u64, kind: u64) -> Result<()> {
        let slot = self.claim(tid)?;
        let region = self.heap.region().clone();
        let off = self.slot_off(slot);
        let n: u64 = region.read_pod(off + S_NWRITES)?;
        let cap = self.caps[slot as usize];
        if n >= cap {
            // Grow the writes block (crash-safe pointer swap).
            let old: u64 = region.read_pod(off + S_WRITES)?;
            let new_cap = cap * 2;
            let new = self.heap.reserve(new_cap * ENTRY_SIZE)?;
            let bytes = region.with_slice(old, n * ENTRY_SIZE, |b| b.to_vec())?;
            region.write_bytes(new, &bytes)?;
            region.persist(new, n * ENTRY_SIZE)?;
            self.heap
                .activate(new, Some((off + S_WRITES, new)), Some(old))?;
            self.caps[slot as usize] = new_cap;
        }
        let writes: u64 = region.read_pod(off + S_WRITES)?;
        let e = writes + n * ENTRY_SIZE;
        region.write_pod(e, &((table as u64) << 8 | kind))?;
        region.write_pod(e + 8, &row)?;
        region.persist(e, ENTRY_SIZE)?;
        region.write_pod(off + S_NWRITES, &(n + 1))?;
        region.persist(off + S_NWRITES, 8)?;
        Ok(())
    }

    /// Record an upcoming insert of `row` (call *before* the table write).
    pub fn record_insert(&mut self, tid: u64, table: usize, row: u64) -> Result<()> {
        self.append(tid, table, row, KIND_INSERT)
    }

    /// Record an upcoming invalidation of `row`.
    pub fn record_invalidate(&mut self, tid: u64, table: usize, row: u64) -> Result<()> {
        self.append(tid, table, row, KIND_INVALIDATE)
    }

    /// Durably release a transaction's slot (after commit publish or abort
    /// undo). No-op for read-only transactions that never claimed one.
    pub fn release(&mut self, tid: u64) -> Result<()> {
        if let Some(slot) = self.active.remove(&tid) {
            let region = self.heap.region();
            let off = self.slot_off(slot);
            // pmlint: publish(registry-slot-clear)
            region.store_u64_release(off + S_TID, 0)?;
            region.persist(off + S_TID, 8)?;
        }
        Ok(())
    }

    /// Post-crash repair: for every occupied slot, repair exactly the
    /// referenced rows against the published `last_cts`, then clear the
    /// slot. Idempotent.
    pub fn recover(&mut self, tables: &mut [NvTable], last_cts: u64) -> Result<RegistryRecovery> {
        let region = self.heap.region().clone();
        let mut report = RegistryRecovery::default();
        for s in 0..REGISTRY_SLOTS {
            let off = self.slot_off(s);
            // pmlint: observe(registry-slot-clear)
            let tid: u64 = region.load_u64_acquire(off + S_TID)?;
            if tid == 0 {
                continue;
            }
            report.inflight_txns += 1;
            let n: u64 = region.read_pod(off + S_NWRITES)?;
            let writes: u64 = region.read_pod(off + S_WRITES)?;
            for i in 0..n {
                let e = writes + i * ENTRY_SIZE;
                let word0: u64 = region.read_pod(e)?;
                let row: u64 = region.read_pod(e + 8)?;
                let table = (word0 >> 8) as usize;
                report.entries_walked += 1;
                let Some(t) = tables.get_mut(table) else {
                    continue; // entry from a table the crash never published
                };
                if row >= t.row_count() {
                    continue; // row never materialized
                }
                report.repaired += t.repair_row(row, last_cts)?;
            }
            // Release the slot only after the row repairs above are
            // durable — publish-last, per the `recovery-undo-release`
            // protocol. (`repair_row` persists each repaired word; a
            // crash landing between a repair and this clear replays the
            // slot, and the repairs are idempotent at a fixed last_cts.)
            // pmlint: publish(registry-slot-clear)
            region.store_u64_release(off + S_TID, 0)?;
            region.persist(off + S_TID, 8)?;
        }
        Ok(report)
    }

    /// `(offset, len)` of slot `slot`'s transaction-id word — the publish
    /// word of the `recovery-undo-release` protocol (label
    /// `registry-slot-clear`).
    pub fn slot_tid_extent(&self, slot: usize) -> (u64, u64) {
        (self.slot_off(slot as u64) + S_TID, 8)
    }
}

impl std::fmt::Debug for TxnRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnRegistry")
            .field("base", &self.base)
            .field("active", &self.active.len())
            .finish()
    }
}
