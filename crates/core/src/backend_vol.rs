//! The no-durability backend: DRAM tables only. Serves as the throughput
//! upper bound in experiment E3; a restart loses everything.

use index::{VolatileHashIndex, VolatileOrderedIndex};
use storage::{Schema, TableStore, VTable, Value};

use crate::config::IndexKind;
use crate::error::{EngineError, Result};

/// Per-table DRAM index sets.
pub(crate) struct VolTableIndexes {
    pub hash: Vec<VolatileHashIndex>,
    pub ordered: Vec<VolatileOrderedIndex>,
}

/// The volatile (no durability) backend.
#[derive(Default)]
pub struct VolatileBackend {
    pub(crate) tables: Vec<VTable>,
    pub(crate) names: Vec<String>,
    pub(crate) indexes: Vec<VolTableIndexes>,
}

impl VolatileBackend {
    /// An empty volatile database.
    pub fn create() -> VolatileBackend {
        VolatileBackend::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<usize> {
        if self.names.iter().any(|n| n == name) {
            return Err(EngineError::Catalog(format!(
                "duplicate table name {name:?}"
            )));
        }
        self.tables.push(VTable::new(schema));
        self.names.push(name.to_owned());
        self.indexes.push(VolTableIndexes {
            hash: Vec::new(),
            ordered: Vec::new(),
        });
        Ok(self.tables.len() - 1)
    }

    /// Register and populate an index.
    pub fn create_index(&mut self, table: usize, column: usize, kind: IndexKind) -> Result<()> {
        match kind {
            IndexKind::Hash => {
                let mut idx = VolatileHashIndex::new(column);
                idx.rebuild(&self.tables[table])?;
                self.indexes[table].hash.push(idx);
            }
            IndexKind::Ordered => {
                let mut idx = VolatileOrderedIndex::new(column);
                idx.rebuild(&self.tables[table])?;
                self.indexes[table].ordered.push(idx);
            }
        }
        Ok(())
    }

    /// Notify indexes of a new row version.
    pub fn index_insert(&mut self, table: usize, values: &[Value], row: u64) {
        for idx in &mut self.indexes[table].hash {
            let c = idx.column();
            idx.insert(&values[c], row);
        }
        for idx in &mut self.indexes[table].ordered {
            let c = idx.column();
            idx.insert(&values[c], row);
        }
    }

    /// Merge a table and rebuild its indexes.
    pub fn merge_table(&mut self, table: usize, snapshot: u64) -> Result<storage::MergeStats> {
        let stats = self.tables[table].merge(snapshot)?;
        for idx in &mut self.indexes[table].hash {
            idx.rebuild(&self.tables[table])?;
        }
        for idx in &mut self.indexes[table].ordered {
            idx.rebuild(&self.tables[table])?;
        }
        Ok(stats)
    }
}
