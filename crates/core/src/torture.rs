//! Shared deterministic torture workload: the seeded transaction mix, the
//! commit-ledger oracle, and the four-invariant post-recovery check used by
//! the in-process crash-torture tests, the out-of-process kill(-9) harness
//! (`torture_child` + `tests/integration_real_crash.rs`), and the
//! sim-vs-real conformance pass.
//!
//! Everything here is a pure function of the seed: the same seed produces
//! the same transactions, the same begin/commit sequence, and therefore the
//! same commit-timestamp ledger on every durability backend. That is what
//! lets a parent process reconstruct the oracle for a child it killed
//! without ever seeing the child's memory.

use std::collections::BTreeMap;

use storage::{ColumnDef, DataType, Schema, Value};
use util::rng::{Rng, SmallRng};

use crate::{Database, IndexKind, Result, TableId};

/// Key → version oracle of the committed state.
pub type Oracle = BTreeMap<i64, i64>;

/// One operation of a torture transaction.
#[derive(Debug, Clone)]
pub enum TortureOp {
    /// Insert `key` with version 0 (skipped if present).
    Insert {
        /// Row key.
        key: i64,
    },
    /// Bump `key` to `version` (skipped if absent).
    Update {
        /// Row key.
        key: i64,
        /// New version value.
        version: i64,
    },
    /// Remove `key` (skipped if absent).
    Delete {
        /// Row key.
        key: i64,
    },
}

/// One torture transaction: a short op list plus its commit/abort verdict.
#[derive(Debug, Clone)]
pub struct TortureTxn {
    /// Operations in order.
    pub ops: Vec<TortureOp>,
    /// True to commit, false to abort.
    pub commit: bool,
}

/// Deterministic workload for a case seed: a mix of multi-op transactions
/// over a wide key space, with aborts sprinkled in. Identical to the
/// in-process crash-torture generator so repro seeds transfer between the
/// sim and real harnesses.
pub fn gen_workload(seed: u64) -> Vec<TortureTxn> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ntxns = rng.gen_range_usize(10, 26);
    (0..ntxns)
        .map(|_| {
            let nops = rng.gen_range_usize(1, 6);
            let ops = (0..nops)
                .map(|_| {
                    let key = rng.gen_range_i64(0, 1000);
                    match rng.gen_range_u64(0, 3) {
                        0 => TortureOp::Insert { key },
                        1 => TortureOp::Update {
                            key,
                            version: rng.next_u64() as i64 & 0xFFFF,
                        },
                        _ => TortureOp::Delete { key },
                    }
                })
                .collect();
            TortureTxn {
                ops,
                commit: rng.gen_bool(0.8),
            }
        })
        .collect()
}

/// The two-column `(k, ver)` schema every torture table uses.
pub fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("ver", DataType::Int),
    ])
}

/// Create the torture table plus its hash and ordered indexes on a fresh
/// database. Must be called in the same order on every backend so the
/// engines consume identical timestamp/heap sequences.
pub fn setup_tables(db: &mut Database) -> Result<TableId> {
    let t = db.create_table("t", schema())?;
    db.create_index(t, 0, IndexKind::Hash)?;
    db.create_index(t, 1, IndexKind::Ordered)?;
    Ok(t)
}

/// Run the workload, recording the `(cts, oracle)` ledger entry after every
/// commit. The optional `heartbeat` callback fires after each transaction
/// (commit or abort) with the transaction index and the last durable cts —
/// the child process uses it to emit progress lines the parent can pace
/// asynchronous kills against.
pub fn apply_workload(
    db: &mut Database,
    t: TableId,
    txns: &[TortureTxn],
    snaps: &mut Vec<(u64, Oracle)>,
    mut heartbeat: impl FnMut(usize, u64),
) -> Result<()> {
    let mut oracle = snaps.last().map(|(_, o)| o.clone()).unwrap_or_default();
    for (i, txn) in txns.iter().enumerate() {
        let mut shadow = oracle.clone();
        let mut tx = db.begin();
        for op in &txn.ops {
            match op {
                TortureOp::Insert { key } => {
                    if !shadow.contains_key(key) {
                        db.insert(&mut tx, t, &[Value::Int(*key), Value::Int(0)])?;
                        shadow.insert(*key, 0);
                    }
                }
                TortureOp::Update { key, version } => {
                    let hits = db.scan_eq(&tx, t, 0, &Value::Int(*key))?;
                    if let Some(hit) = hits.first() {
                        db.update(
                            &mut tx,
                            t,
                            hit.row,
                            &[Value::Int(*key), Value::Int(*version)],
                        )?;
                        shadow.insert(*key, *version);
                    }
                }
                TortureOp::Delete { key } => {
                    let hits = db.scan_eq(&tx, t, 0, &Value::Int(*key))?;
                    if let Some(hit) = hits.first() {
                        db.delete(&mut tx, t, hit.row)?;
                        shadow.remove(key);
                    }
                }
            }
        }
        if txn.commit {
            let cts = db.commit(&mut tx)?;
            oracle = shadow;
            snaps.push((cts, oracle.clone()));
        } else {
            db.abort(&mut tx)?;
        }
        let last = snaps.last().map(|(c, _)| *c).unwrap_or(0);
        heartbeat(i, last);
    }
    Ok(())
}

/// Scan the engine's visible state into an oracle map.
pub fn engine_state(db: &mut Database, t: TableId) -> Result<Oracle> {
    let tx = db.begin();
    Ok(db
        .scan_all(&tx, t)?
        .into_iter()
        .filter_map(|r| Some((r.values[0].as_int()?, r.values[1].as_int()?)))
        .collect())
}

/// An invariant violation found by [`check_invariants`].
#[derive(Debug)]
pub struct TortureViolation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable diagnosis.
    pub detail: String,
}

/// Check the four crash-torture invariants against a recovered database:
/// committed-prefix durability, no uncommitted effects, allocator
/// leak-freedom, and index↔table agreement. `last_cts` is the watermark the
/// recovery reported; `snaps` is the seeded commit ledger (entry 0 is the
/// empty pre-workload state).
pub fn check_invariants(
    db: &mut Database,
    t: TableId,
    snaps: &[(u64, Oracle)],
    last_cts: u64,
    seed: u64,
) -> std::result::Result<(), TortureViolation> {
    let expected = snaps
        .iter()
        .rev()
        .find(|(cts, _)| *cts <= last_cts)
        .map(|(_, o)| o.clone())
        .ok_or_else(|| TortureViolation {
            invariant: "committed-prefix",
            detail: format!("seed {seed}: recovered last_cts {last_cts} matches no ledger entry"),
        })?;
    let got = engine_state(db, t).map_err(|e| TortureViolation {
        invariant: "committed-prefix",
        detail: format!("seed {seed}: post-recovery scan failed: {e}"),
    })?;
    if got != expected {
        let missing: Vec<_> = expected
            .iter()
            .filter(|(k, _)| !got.contains_key(*k))
            .collect();
        let extra: Vec<_> = got
            .iter()
            .filter(|(k, _)| !expected.contains_key(*k))
            .collect();
        let inv = if extra.is_empty() {
            "committed-prefix-durability"
        } else {
            "no-uncommitted-effects"
        };
        return Err(TortureViolation {
            invariant: inv,
            detail: format!(
                "seed {seed}: state diverges at last_cts {last_cts}: {} rows expected, {} \
                 visible; missing {missing:?}, extra {extra:?}",
                expected.len(),
                got.len()
            ),
        });
    }

    let integrity = db.verify_integrity().map_err(|e| TortureViolation {
        invariant: "integrity-check",
        detail: format!("seed {seed}: verify_integrity failed: {e}"),
    })?;
    if integrity.heap_limbo_blocks != 0 {
        return Err(TortureViolation {
            invariant: "allocator-leak-free",
            detail: format!("seed {seed}: {}", integrity.render()),
        });
    }
    if !integrity.mvcc.is_clean() {
        return Err(TortureViolation {
            invariant: "no-uncommitted-effects",
            detail: format!("seed {seed}: {}", integrity.render()),
        });
    }
    if !integrity.index.is_clean() {
        return Err(TortureViolation {
            invariant: "index-table-agreement",
            detail: format!("seed {seed}: {}", integrity.render()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DurabilityConfig;

    #[test]
    fn workload_is_deterministic() {
        let a = gen_workload(42);
        let b = gen_workload(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.commit, y.commit);
            assert_eq!(format!("{:?}", x.ops), format!("{:?}", y.ops));
        }
    }

    #[test]
    fn ledger_matches_engine_on_sim_backend() {
        let mut db = Database::create(DurabilityConfig::Nvm {
            capacity: 8 << 20,
            latency: nvm::LatencyModel::zero(),
        })
        .unwrap();
        let t = setup_tables(&mut db).unwrap();
        let txns = gen_workload(7);
        let mut snaps = vec![(0, Oracle::new())];
        apply_workload(&mut db, t, &txns, &mut snaps, |_, _| {}).unwrap();
        let last = snaps.last().unwrap();
        assert_eq!(engine_state(&mut db, t).unwrap(), last.1);
        check_invariants(&mut db, t, &snaps, last.0, 7).unwrap();
    }
}
