//! Out-of-process torture child: runs a seeded deterministic workload
//! against a file-backed database so a parent test can SIGKILL it at
//! randomized points — including mid-recovery — and then reopen the file
//! itself to verify the crash invariants.
//!
//! Protocol (one line per event on stdout, flushed eagerly):
//!
//! - `HB <txn_index> <last_cts>` — heartbeat after every transaction.
//! - `FENCES <n>` — fences issued by the workload (after it completes).
//! - `WAITING` — idle loop entered (`--wait-term`), safe to SIGTERM.
//! - `RECOVERED last_cts=<c> clean=<0|1> attempt=<a> rung=<r> undo=<0|1>`
//!   — recover mode succeeded.
//! - `CLEAN <last_cts>` — graceful shutdown completed.
//! - `ERR <detail>` — any engine error (exit code 3).
//!
//! Kill points: `--kill-fence N` arms a process-wide SIGKILL at the Nth
//! fence after setup (create mode) or before open (recover mode);
//! `--kill-after-txns N` raises SIGKILL right after the Nth transaction.
//! Without either, the child runs to completion and (unless `--hard-exit`)
//! shuts down cleanly.

use std::io::Write as _;
use std::path::PathBuf;

use hyrise_nv::torture::{apply_workload, gen_workload, setup_tables, Oracle};
use hyrise_nv::{Database, DurabilityConfig};
use nvm::{arm_kill_at_fence, install_sigterm_hook, raise_sigkill, sigterm_seen, LatencyModel};

struct Args {
    path: PathBuf,
    seed: u64,
    capacity: u64,
    recover: bool,
    kill_fence: Option<u64>,
    kill_after_txns: Option<usize>,
    wait_term: bool,
    hard_exit: bool,
    graceful: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: torture_child --path FILE --seed N [--capacity BYTES] [--recover] \
         [--kill-fence N] [--kill-after-txns N] [--wait-term] [--hard-exit] [--graceful]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        path: PathBuf::new(),
        seed: 0,
        capacity: 4 << 20,
        recover: false,
        kill_fence: None,
        kill_after_txns: None,
        wait_term: false,
        hard_exit: false,
        graceful: false,
    };
    let mut it = std::env::args().skip(1);
    let mut have_path = false;
    let mut have_seed = false;
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--path" => {
                args.path = PathBuf::from(val(&mut it));
                have_path = true;
            }
            "--seed" => {
                args.seed = val(&mut it).parse().unwrap_or_else(|_| usage());
                have_seed = true;
            }
            "--capacity" => args.capacity = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--recover" => args.recover = true,
            "--kill-fence" => {
                args.kill_fence = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--kill-after-txns" => {
                args.kill_after_txns = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--wait-term" => args.wait_term = true,
            "--hard-exit" => args.hard_exit = true,
            "--graceful" => args.graceful = true,
            _ => usage(),
        }
    }
    if !have_path || !have_seed {
        usage();
    }
    args
}

fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn fail(e: impl std::fmt::Display) -> ! {
    emit(&format!("ERR {e}"));
    std::process::exit(3);
}

fn config(args: &Args) -> DurabilityConfig {
    DurabilityConfig::nvm_file(&args.path, args.capacity, LatencyModel::zero())
}

/// Recover mode: reopen an existing image, optionally dying mid-recovery.
fn run_recover(args: &Args) -> ! {
    if let Some(n) = args.kill_fence {
        arm_kill_at_fence(n);
    }
    let (db, report) = match Database::open(config(args)) {
        Ok(v) => v,
        Err(e) => fail(e),
    };
    arm_kill_at_fence(0);
    let undo = report.phases.iter().any(|p| p.name == "mvcc undo pass");
    emit(&format!(
        "RECOVERED last_cts={} clean={} attempt={} rung={} undo={}",
        report.last_cts, report.clean_shutdown as u8, report.attempt, report.rung, undo as u8
    ));
    if args.graceful {
        let last = report.last_cts;
        if let Err(e) = db.shutdown() {
            fail(e);
        }
        emit(&format!("CLEAN {last}"));
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    install_sigterm_hook();
    if args.recover {
        run_recover(&args);
    }

    let mut db = match Database::create(config(&args)) {
        Ok(db) => db,
        Err(e) => fail(e),
    };
    let t = match setup_tables(&mut db) {
        Ok(t) => t,
        Err(e) => fail(e),
    };

    let txns = gen_workload(args.seed);
    let region = match db.nv_backend() {
        Some(b) => b.region().clone(),
        None => fail("no NVM backend on file-backed config"),
    };
    let fences_before = region.stats().fences;
    if let Some(n) = args.kill_fence {
        arm_kill_at_fence(n);
    }

    // One transaction at a time so SIGTERM between transactions can take
    // the graceful path mid-workload, and txn-boundary kills are exact.
    let mut snaps: Vec<(u64, Oracle)> = vec![(0, Oracle::new())];
    for (i, txn) in txns.iter().enumerate() {
        if sigterm_seen() {
            break;
        }
        if let Err(e) = apply_workload(
            &mut db,
            t,
            std::slice::from_ref(txn),
            &mut snaps,
            |_, cts| emit(&format!("HB {i} {cts}")),
        ) {
            fail(e);
        }
        if args.kill_after_txns == Some(i + 1) {
            raise_sigkill();
        }
    }
    arm_kill_at_fence(0);
    emit(&format!("FENCES {}", region.stats().fences - fences_before));

    if args.wait_term {
        while !sigterm_seen() {
            emit("WAITING");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
    if args.hard_exit {
        raise_sigkill();
    }
    let last = snaps.last().map(|(c, _)| *c).unwrap_or(0);
    if let Err(e) = db.shutdown() {
        fail(e);
    }
    emit(&format!("CLEAN {last}"));
    std::process::exit(0);
}
