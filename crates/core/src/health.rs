//! Watermark-driven graceful degradation.
//!
//! The persistent heap is a bump allocator with volatile free bins: its
//! live footprint only shrinks when merges retire delta versions or when
//! orphaned reservations are swept. An engine that accepts writes all the
//! way to the brim therefore turns every commit into a coin-flip against
//! [`nvm::NvmError::OutOfMemory`]. Instead the engine steers by a small
//! state machine over heap utilization:
//!
//! | state | entered when | writes | DDL | reads |
//! |---|---|---|---|---|
//! | `Normal` | utilization `< resume` (hysteresis) | ✓ | ✓ | ✓ |
//! | `Backpressure` | utilization `≥ backpressure` | ✗ (retryable) | ✓ | ✓ |
//! | `ReadOnly` | utilization `≥ read_only`, or the shadow log wedged | ✗ | ✗ | ✓ |
//!
//! Transitions use hysteresis: once degraded, the engine returns to
//! `Normal` only when utilization falls below the *resume* watermark
//! (strictly lower than the backpressure watermark), so the state does not
//! flap around a boundary. A wedged shadow-WAL writer forces `ReadOnly`
//! regardless of utilization — an un-synced log would break the
//! `log ⊇ published state` invariant recovery rung 2 depends on — until
//! [`crate::Database::reclaim`] recreates the log and re-baselines its
//! checkpoint.

use crate::error::{EngineError, Result};

/// Degradation state of the engine (see the module docs for the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// All operations admitted.
    #[default]
    Normal,
    /// New writes rejected with the retryable [`EngineError::Backpressure`];
    /// DDL, maintenance, and reads still admitted.
    Backpressure,
    /// Only reads (and reclamation) admitted.
    ReadOnly,
}

impl HealthState {
    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Normal => "normal",
            HealthState::Backpressure => "backpressure",
            HealthState::ReadOnly => "read-only",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Utilization thresholds steering the health state machine. All three are
/// fractions of region capacity; invariants: `resume < backpressure <
/// read_only`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Watermarks {
    /// Entering `Backpressure`: reject new writes above this.
    pub backpressure: f64,
    /// Entering `ReadOnly`: reject writes *and* DDL above this, keeping
    /// enough headroom for the emergency merge itself to allocate.
    pub read_only: f64,
    /// Returning to `Normal`: utilization must fall below this (hysteresis
    /// gap against flapping).
    pub resume: f64,
}

impl Default for Watermarks {
    fn default() -> Self {
        Watermarks {
            backpressure: 0.85,
            read_only: 0.95,
            resume: 0.75,
        }
    }
}

/// Snapshot of the engine's degradation machinery, returned by
/// [`crate::Database::health`].
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Current state of the admission state machine.
    pub state: HealthState,
    /// Heap utilization the state was derived from (0.0 on non-NVM
    /// backends).
    pub utilization: f64,
    /// Bump frontier of the heap in bytes (NVM backend only).
    pub high_water: u64,
    /// Region capacity in bytes (NVM backend only).
    pub capacity: u64,
    /// Bytes parked in the volatile free bins.
    pub free_bytes: u64,
    /// True while the shadow-WAL writer is wedged by an out-of-space
    /// failure (forces `ReadOnly`).
    pub wal_wedged: bool,
    /// Operations that unwound with a typed capacity error.
    pub capacity_aborts: u64,
    /// Writes rejected by admission control since creation.
    pub writes_rejected: u64,
    /// Emergency reclamations run ([`crate::Database::reclaim`]).
    pub reclaims: u64,
    /// The active thresholds.
    pub watermarks: Watermarks,
}

impl HealthReport {
    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "health: {} ({:.1}% of {} bytes, {} free-binned){}; \
             {} capacity aborts, {} writes rejected, {} reclaims",
            self.state,
            self.utilization * 100.0,
            self.capacity,
            self.free_bytes,
            if self.wal_wedged { ", wal wedged" } else { "" },
            self.capacity_aborts,
            self.writes_rejected,
            self.reclaims
        )
    }
}

/// What one [`crate::Database::reclaim`] pass did.
#[derive(Debug, Clone, Default)]
pub struct ReclaimReport {
    /// Tables whose delta was merged into a fresh main.
    pub tables_merged: u64,
    /// Tables whose emergency merge itself failed (typically: not enough
    /// headroom to build the new main). Their old image stays intact.
    pub merges_failed: u64,
    /// Orphaned `Reserved` blocks swept back into the free bins.
    pub reserved_blocks_freed: u64,
    /// Bytes those orphans held.
    pub reserved_bytes_freed: u64,
    /// True when a wedged shadow log was recreated and re-baselined.
    pub wal_recreated: bool,
    /// Utilization before the pass.
    pub utilization_before: f64,
    /// Utilization after the pass.
    pub utilization_after: f64,
    /// Health state after the pass re-observed the heap.
    pub state_after: HealthState,
}

/// The volatile state machine itself. Owned by [`crate::Database`]; fed
/// fresh utilization observations before every admission decision.
#[derive(Debug)]
pub(crate) struct HealthTracker {
    state: HealthState,
    marks: Watermarks,
    wal_wedged: bool,
    last_utilization: f64,
    capacity_aborts: u64,
    writes_rejected: u64,
    reclaims: u64,
}

impl HealthTracker {
    pub fn new(marks: Watermarks) -> HealthTracker {
        HealthTracker {
            state: HealthState::Normal,
            marks,
            wal_wedged: false,
            last_utilization: 0.0,
            capacity_aborts: 0,
            writes_rejected: 0,
            reclaims: 0,
        }
    }

    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Back to the post-restart state: watermarks survive, the derived
    /// state and counters restart with the (simulated) process.
    pub fn reset(&mut self) {
        *self = HealthTracker::new(self.marks);
    }

    /// Feed a fresh utilization sample and (re)derive the state. A wedged
    /// shadow log dominates every utilization-based transition.
    pub fn observe(&mut self, utilization: f64) -> HealthState {
        self.last_utilization = utilization;
        let m = self.marks;
        self.state = if self.wal_wedged || utilization >= m.read_only {
            HealthState::ReadOnly
        } else {
            match self.state {
                HealthState::Normal if utilization >= m.backpressure => HealthState::Backpressure,
                // Hysteresis: degraded states only resume below `resume`.
                HealthState::Backpressure | HealthState::ReadOnly if utilization < m.resume => {
                    HealthState::Normal
                }
                // A ReadOnly engine whose utilization dropped between
                // read_only and resume relaxes to Backpressure: writes stay
                // rejected but DDL/maintenance come back.
                HealthState::ReadOnly => HealthState::Backpressure,
                s => s,
            }
        };
        self.state
    }

    pub fn set_wal_wedged(&mut self, wedged: bool) {
        self.wal_wedged = wedged;
    }

    pub fn note_capacity_abort(&mut self) {
        self.capacity_aborts += 1;
    }

    pub fn note_reclaim(&mut self) {
        self.reclaims += 1;
    }

    /// Admission check for row writes (insert/delete/update).
    pub fn admit_write(&mut self) -> Result<()> {
        match self.state {
            HealthState::Normal => Ok(()),
            HealthState::Backpressure => {
                self.writes_rejected += 1;
                Err(EngineError::Backpressure {
                    utilization_pct: (self.last_utilization * 100.0) as u32,
                })
            }
            HealthState::ReadOnly => {
                self.writes_rejected += 1;
                Err(EngineError::ReadOnly {
                    reason: if self.wal_wedged {
                        "shadow log wedged by an out-of-space failure"
                    } else {
                        "heap utilization over the read-only watermark"
                    },
                })
            }
        }
    }

    /// Admission check for DDL (create table/index) — rejected only in
    /// `ReadOnly`, since DDL is itself sometimes the cure (a fresh table to
    /// migrate into) and always bounded.
    pub fn admit_ddl(&mut self) -> Result<()> {
        if self.state == HealthState::ReadOnly {
            self.writes_rejected += 1;
            return Err(EngineError::ReadOnly {
                reason: if self.wal_wedged {
                    "shadow log wedged by an out-of-space failure"
                } else {
                    "heap utilization over the read-only watermark"
                },
            });
        }
        Ok(())
    }

    pub fn report(&self, high_water: u64, capacity: u64, free_bytes: u64) -> HealthReport {
        HealthReport {
            state: self.state,
            utilization: self.last_utilization,
            high_water,
            capacity,
            free_bytes,
            wal_wedged: self.wal_wedged,
            capacity_aborts: self.capacity_aborts,
            writes_rejected: self.writes_rejected,
            reclaims: self.reclaims,
            watermarks: self.marks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(Watermarks::default())
    }

    #[test]
    fn normal_until_backpressure_watermark() {
        let mut t = tracker();
        assert_eq!(t.observe(0.10), HealthState::Normal);
        assert_eq!(t.observe(0.84), HealthState::Normal);
        assert_eq!(t.observe(0.85), HealthState::Backpressure);
    }

    #[test]
    fn read_only_at_high_watermark_from_any_state() {
        let mut t = tracker();
        assert_eq!(t.observe(0.96), HealthState::ReadOnly);
        let mut t = tracker();
        t.observe(0.86);
        assert_eq!(t.observe(0.95), HealthState::ReadOnly);
    }

    #[test]
    fn hysteresis_holds_backpressure_until_resume() {
        let mut t = tracker();
        t.observe(0.90);
        // Dropping below the backpressure mark is not enough…
        assert_eq!(t.observe(0.80), HealthState::Backpressure);
        // …only dropping below resume releases it.
        assert_eq!(t.observe(0.74), HealthState::Normal);
    }

    #[test]
    fn read_only_relaxes_through_backpressure() {
        let mut t = tracker();
        t.observe(0.97);
        assert_eq!(t.observe(0.90), HealthState::Backpressure);
        assert_eq!(t.observe(0.50), HealthState::Normal);
    }

    #[test]
    fn wedged_wal_forces_read_only_at_any_utilization() {
        let mut t = tracker();
        t.set_wal_wedged(true);
        assert_eq!(t.observe(0.01), HealthState::ReadOnly);
        assert!(matches!(t.admit_write(), Err(EngineError::ReadOnly { .. })));
        t.set_wal_wedged(false);
        assert_eq!(t.observe(0.01), HealthState::Normal);
    }

    #[test]
    fn admission_matches_state_table() {
        let mut t = tracker();
        t.observe(0.10);
        assert!(t.admit_write().is_ok());
        assert!(t.admit_ddl().is_ok());
        t.observe(0.90);
        assert!(matches!(
            t.admit_write(),
            Err(EngineError::Backpressure { .. })
        ));
        assert!(t.admit_ddl().is_ok());
        t.observe(0.96);
        assert!(matches!(t.admit_write(), Err(EngineError::ReadOnly { .. })));
        assert!(matches!(t.admit_ddl(), Err(EngineError::ReadOnly { .. })));
        assert_eq!(t.report(0, 0, 0).writes_rejected, 3);
    }
}
