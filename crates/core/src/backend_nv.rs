//! The Hyrise-NV backend: persistent catalogue + NVM tables + persistent
//! hash indexes.
//!
//! Persistent catalogue layout (the heap's root object):
//!
//! ```text
//! 0:  last_cts u64                 — the durable commit-timestamp publish
//! 8:  ntables  u64                 — publish point for CREATE TABLE
//! 16: registry u64                 — txn-registry base pointer
//! 24: progress u64                 — recovery attempt counter (0 = clean)
//! 32: per table (stride 24): name_ptr | table_root | idx_block
//! idx_block: count u64 | per index (stride 24): kind | column | desc
//! ```
//!
//! `kind` 0 = persistent hash (desc = `NvHashIndex` descriptor), 1 =
//! persistent ordered skip list (desc = `NvOrderedIndex` descriptor). Both
//! are re-attached on restart in O(1) — no index is ever rebuilt on this
//! backend, matching the paper's "table *and index* structures on NVM".

use std::sync::Arc;

use index::{NvHashIndex, NvOrderedIndex};
use nvm::{AllocatorRecovery, LatencyModel, NvmHeap, NvmRegion};
use storage::mvcc::TS_INF;
use storage::nv::{read_string, store_string, NvTable};
use storage::{Schema, TableStore, VTable};

use crate::error::{EngineError, Result};
use crate::shadow_wal::ShadowWal;
use crate::txn_registry::TxnRegistry;
use crate::{MAX_INDEXES_PER_TABLE, MAX_TABLES};

const CAT_LAST_CTS: u64 = 0;
const CAT_NTABLES: u64 = 8;
const CAT_REGISTRY: u64 = 16;
const CAT_PROGRESS: u64 = 24;
/// Clean-shutdown marker: non-zero only between a graceful shutdown's
/// final sync and the next open, which durably clears it before any other
/// mutation. A restart that finds it set may skip the mvcc undo pass — no
/// transaction can have been in flight.
const CAT_CLEAN: u64 = 32;
const CAT_ENTRIES: u64 = 40;
const CAT_ENTRY_STRIDE: u64 = 24;
const CAT_SIZE: u64 = CAT_ENTRIES + MAX_TABLES as u64 * CAT_ENTRY_STRIDE;

const IDX_COUNT: u64 = 0;
const IDX_ENTRIES: u64 = 8;
const IDX_ENTRY_STRIDE: u64 = 24;
const IDX_BLOCK_SIZE: u64 = IDX_ENTRIES + MAX_INDEXES_PER_TABLE as u64 * IDX_ENTRY_STRIDE;

pub(crate) const KIND_HASH: u64 = 0;
pub(crate) const KIND_ORDERED: u64 = 1;

/// Per-table index sets — all persistent on this backend.
pub(crate) struct NvTableIndexes {
    /// Persistent hash indexes (attached, never rebuilt).
    pub hash: Vec<NvHashIndex>,
    /// Persistent ordered (skip-list) indexes (attached, never rebuilt).
    pub ordered: Vec<NvOrderedIndex>,
}

/// The NVM durability backend.
pub struct NvBackend {
    pub(crate) heap: NvmHeap,
    catalog: u64,
    pub(crate) tables: Vec<NvTable>,
    pub(crate) names: Vec<String>,
    pub(crate) indexes: Vec<NvTableIndexes>,
    pub(crate) registry: TxnRegistry,
    /// Shadow redo log (recovery rung 2); None on the plain NVM backend.
    pub(crate) shadow: Option<ShadowWal>,
}

/// Catalogue decode with per-table failure isolation — the raw material of
/// the recovery ladder. Catalogue-level damage (unreadable root, implausible
/// counts, corrupt name strings, registry) stays a hard error; a table whose
/// tree fails to open is recorded per slot so rung 2 can rebuild exactly the
/// broken tables.
pub(crate) struct AttachParts {
    pub heap: NvmHeap,
    pub catalog: u64,
    pub names: Vec<String>,
    pub roots: Vec<u64>,
    pub idx_blocks: Vec<u64>,
    pub tables: Vec<std::result::Result<NvTable, EngineError>>,
    pub registry: TxnRegistry,
    pub last_cts: u64,
}

/// One persistent index registration read from the catalogue.
pub(crate) struct IndexEntrySpec {
    pub kind: u64,
    pub column: usize,
    pub desc: u64,
    /// Catalogue offset of this entry (for the desc swap on rebuild).
    pub entry_base: u64,
}

impl AttachParts {
    /// Decode the index registrations of table `t` (descriptors are not
    /// opened — the ladder decides per entry whether to attach or rebuild).
    pub fn index_entries(&self, t: usize) -> Result<Vec<IndexEntrySpec>> {
        let r = self.heap.region();
        let idx_block = *self
            .idx_blocks
            .get(t)
            .ok_or_else(|| EngineError::Catalog(format!("table slot {t} out of range")))?;
        // pmlint: observe(index-count)
        let icount: u64 = r.load_u64_acquire(idx_block + IDX_COUNT)?;
        if icount as usize > MAX_INDEXES_PER_TABLE {
            return Err(EngineError::Catalog("implausible index count".into()));
        }
        let mut out = Vec::with_capacity(icount as usize);
        for i in 0..icount {
            let ib = idx_block + IDX_ENTRIES + i * IDX_ENTRY_STRIDE;
            out.push(IndexEntrySpec {
                kind: r.read_pod(ib)?,
                column: r.read_pod::<u64>(ib + 8)? as usize,
                desc: r.read_pod(ib + 16)?,
                entry_base: ib,
            });
        }
        Ok(out)
    }

    /// Durably swap table `t`'s root to a rebuilt tree. The old tree stays
    /// allocated but unreachable — quarantined rather than freed, since its
    /// block metadata cannot be trusted after a media fault.
    pub fn swap_table_root(&mut self, t: usize, new_root: u64) -> Result<()> {
        let slot = self
            .roots
            .get_mut(t)
            .ok_or_else(|| EngineError::Catalog(format!("table slot {t} out of range")))?;
        let base = self.catalog + CAT_ENTRIES + t as u64 * CAT_ENTRY_STRIDE;
        let r = self.heap.region();
        // pmlint: publish(catalog-table-root)
        r.store_u64_release(base + 8, new_root)?;
        r.persist(base + 8, 8)?;
        *slot = new_root;
        Ok(())
    }

    /// Durably swap an index entry's descriptor to a rebuilt index (same
    /// publish idiom as the post-merge rebuild). The old structure is
    /// quarantined, not destroyed.
    pub fn swap_index_desc(&self, e: &IndexEntrySpec, new_desc: u64) -> Result<()> {
        let r = self.heap.region();
        // pmlint: publish(index-desc)
        r.store_u64_release(e.entry_base + 16, new_desc)?;
        r.persist(e.entry_base + 16, 8)?;
        Ok(())
    }

    /// Assemble the backend once every table slot is healthy and the index
    /// sets are attached.
    pub fn into_backend(self, indexes: Vec<NvTableIndexes>) -> Result<NvBackend> {
        let mut tables = Vec::with_capacity(self.tables.len());
        for t in self.tables {
            tables.push(t?);
        }
        Ok(NvBackend {
            heap: self.heap,
            catalog: self.catalog,
            tables,
            names: self.names,
            indexes,
            registry: self.registry,
            shadow: None,
        })
    }
}

impl NvBackend {
    /// Format a fresh region and create an empty catalogue.
    pub fn create(capacity: u64, latency: LatencyModel) -> Result<NvBackend> {
        Self::create_on_region(Arc::new(NvmRegion::new(capacity, latency)))
    }

    /// Format a caller-built region (simulated or file-backed) and create
    /// an empty catalogue on it.
    pub fn create_on_region(region: Arc<NvmRegion>) -> Result<NvBackend> {
        let heap = NvmHeap::format(region)?;
        let catalog = heap.alloc(CAT_SIZE)?;
        let registry = TxnRegistry::create(&heap)?;
        let r = heap.region();
        r.write_pod(catalog + CAT_LAST_CTS, &0u64)?;
        r.write_pod(catalog + CAT_NTABLES, &0u64)?;
        r.write_pod(catalog + CAT_REGISTRY, &registry.base_offset())?;
        r.write_pod(catalog + CAT_PROGRESS, &0u64)?;
        r.write_pod(catalog + CAT_CLEAN, &0u64)?;
        r.persist(catalog, CAT_ENTRIES)?;
        heap.set_root(catalog)?;
        Ok(NvBackend {
            heap,
            catalog,
            tables: Vec::new(),
            names: Vec::new(),
            indexes: Vec::new(),
            registry,
            shadow: None,
        })
    }

    /// Re-open an existing region after a (simulated) power failure: run the
    /// allocator recovery scan, then re-attach the catalogue, tables (probe
    /// rebuild), and indexes. Returns the backend plus the allocator report.
    pub fn open(region: Arc<NvmRegion>) -> Result<(NvBackend, AllocatorRecovery)> {
        let (heap, alloc_report) = NvmHeap::open(region)?;
        Ok((Self::attach(heap)?, alloc_report))
    }

    /// Re-attach catalogue, tables, and indexes over an already-recovered
    /// heap (the restart path times this separately from the allocator
    /// scan). The first per-table failure is a hard error — this is the
    /// fast rung-0 path; the ladder uses [`NvBackend::attach_parts`].
    pub fn attach(heap: NvmHeap) -> Result<NvBackend> {
        let parts = Self::attach_parts(heap)?;
        let mut indexes = Vec::with_capacity(parts.tables.len());
        for t in 0..parts.tables.len() {
            let mut set = NvTableIndexes {
                hash: Vec::new(),
                ordered: Vec::new(),
            };
            for e in parts.index_entries(t)? {
                match e.kind {
                    KIND_HASH => set.hash.push(NvHashIndex::open(&parts.heap, e.desc)?),
                    KIND_ORDERED => set.ordered.push(NvOrderedIndex::open(&parts.heap, e.desc)?),
                    _ => return Err(EngineError::Catalog("unknown index kind".into())),
                }
            }
            indexes.push(set);
        }
        parts.into_backend(indexes)
    }

    /// Decode the catalogue with per-table failure isolation (see
    /// [`AttachParts`]). Indexes are left unopened.
    pub(crate) fn attach_parts(heap: NvmHeap) -> Result<AttachParts> {
        let catalog = heap.root()?;
        if catalog == 0 {
            return Err(EngineError::Catalog("no catalogue root in region".into()));
        }
        let r = heap.region().clone();
        // pmlint: observe(catalog-cts)
        let last_cts: u64 = r.load_u64_acquire(catalog + CAT_LAST_CTS)?;
        // pmlint: observe(catalog-ntables)
        let ntables: u64 = r.load_u64_acquire(catalog + CAT_NTABLES)?;
        if ntables as usize > MAX_TABLES {
            return Err(EngineError::Catalog("implausible table count".into()));
        }
        let mut tables = Vec::with_capacity(ntables as usize);
        let mut names = Vec::with_capacity(ntables as usize);
        let mut roots = Vec::with_capacity(ntables as usize);
        let mut idx_blocks = Vec::with_capacity(ntables as usize);
        for t in 0..ntables {
            let base = catalog + CAT_ENTRIES + t * CAT_ENTRY_STRIDE;
            let name_ptr: u64 = r.read_pod(base)?;
            let table_root: u64 = r.read_pod(base + 8)?;
            let idx_block: u64 = r.read_pod(base + 16)?;
            names.push(read_string(&heap, name_ptr).map_err(EngineError::Storage)?);
            roots.push(table_root);
            idx_blocks.push(idx_block);
            tables.push(NvTable::open(&heap, table_root).map_err(EngineError::Storage));
        }
        let registry_ptr: u64 = r.read_pod(catalog + CAT_REGISTRY)?;
        let registry = TxnRegistry::open(&heap, registry_ptr)?;
        Ok(AttachParts {
            heap,
            catalog,
            names,
            roots,
            idx_blocks,
            tables,
            registry,
            last_cts,
        })
    }

    /// Rebuild one table's NVM tree from a replayed DRAM image (rung 2).
    /// Physical row ids are reproduced in order, so surviving registry
    /// entries and freshly rebuilt indexes stay aligned.
    pub(crate) fn rebuild_table_from(heap: &NvmHeap, src: &VTable) -> Result<NvTable> {
        let mut nt = NvTable::create(heap, src.schema().clone())?;
        for row in 0..src.row_count() {
            let values = src.row_values(row)?;
            let begin = src.begin_ts(row)?;
            let got = nt.insert_version(&values, begin)?;
            if got != row {
                return Err(EngineError::Catalog(
                    "row id drift during WAL table rebuild".into(),
                ));
            }
            let end = src.end_ts(row)?;
            if end != TS_INF {
                nt.commit_invalidate(row, end)?;
            }
        }
        Ok(nt)
    }

    /// Counts of (persistently re-attached, DRAM-rebuilt) indexes. On this
    /// backend every index is persistent, so nothing is ever rebuilt.
    pub fn index_counts(&self) -> (u64, u64) {
        let attached = self
            .indexes
            .iter()
            .map(|s| (s.hash.len() + s.ordered.len()) as u64)
            .sum();
        (attached, 0)
    }

    /// A cloneable durable-publish handle for the commit protocol.
    pub fn publisher(&self) -> NvPublisher {
        NvPublisher {
            heap: self.heap.clone(),
            catalog: self.catalog,
        }
    }

    /// The shared region (crash injection, stats, clock).
    pub fn region(&self) -> &Arc<NvmRegion> {
        self.heap.region()
    }

    /// The persistent heap.
    pub fn heap(&self) -> &NvmHeap {
        &self.heap
    }

    /// `(offset, len)` of the catalogue's commit-timestamp word — the
    /// publish word of the commit protocols (label `catalog-cts`).
    pub fn cts_extent(&self) -> (u64, u64) {
        (self.catalog + CAT_LAST_CTS, 8)
    }

    /// `(offset, len)` of the catalogue's table count — the publish word
    /// of the `ddl-create-table` protocol (label `catalog-ntables`).
    pub fn ntables_extent(&self) -> (u64, u64) {
        (self.catalog + CAT_NTABLES, 8)
    }

    /// `(offset, len)` of catalogue entry `t` (name ptr, table root, index
    /// block) — label `catalog-entry` of the `ddl-create-table` protocol.
    pub fn entry_extent(&self, t: usize) -> (u64, u64) {
        (
            self.catalog + CAT_ENTRIES + t as u64 * CAT_ENTRY_STRIDE,
            CAT_ENTRY_STRIDE,
        )
    }

    /// `(offset, len)` of table `t`'s delta row counter — the publish word
    /// of the `delta-append` protocol (label `delta-rows`).
    pub fn table_rows_publish_extent(&self, t: usize) -> Option<(u64, u64)> {
        self.tables.get(t).map(|tab| tab.rows_publish_extent())
    }

    /// `(offset, len)` of table `t`'s root pair pointer — the publish word
    /// of the `merge-publish` protocol (label `table-pair`).
    pub fn table_pair_publish_extent(&self, t: usize) -> Option<(u64, u64)> {
        self.tables.get(t).map(|tab| tab.pair_publish_extent())
    }

    /// `(offset, len)` of table `table`'s persistent index count — the
    /// publish word of the `index-register` protocol (label `index-count`).
    pub fn idx_count_extent(&self, table: usize) -> Result<(u64, u64)> {
        Ok((self.idx_block(table)? + IDX_COUNT, 8))
    }

    /// `(offset, len)` of index entry `i` of table `table` — label
    /// `index-entry` of the `index-register` protocol.
    pub fn idx_entry_extent(&self, table: usize, i: u64) -> Result<(u64, u64)> {
        Ok((
            self.idx_block(table)? + IDX_ENTRIES + i * IDX_ENTRY_STRIDE,
            IDX_ENTRY_STRIDE,
        ))
    }

    /// `(offset, len)` of the catalogue's recovery-progress word — the
    /// publish word of the `recovery-progress` protocol.
    pub fn recovery_progress_extent(&self) -> (u64, u64) {
        (self.catalog + CAT_PROGRESS, 8)
    }

    /// `(offset, len)` of registry slot `slot`'s transaction-id word —
    /// the publish word of the `recovery-undo-release` protocol (label
    /// `registry-slot-clear`).
    pub fn registry_slot_tid_extent(&self, slot: usize) -> (u64, u64) {
        self.registry.slot_tid_extent(slot)
    }

    /// Recovery attempt counter still recorded in the catalogue (0 after
    /// a completed recovery; a successful [`NvBackend::create`] also
    /// starts at 0).
    pub fn recovery_attempts(&self) -> Result<u64> {
        // pmlint: observe(recovery-progress)
        Ok(self
            .heap
            .region()
            .load_u64_acquire(self.catalog + CAT_PROGRESS)?)
    }

    /// Durably set the clean-shutdown marker. Called by
    /// [`Database::shutdown`](crate::Database::shutdown) after the last
    /// transaction; the next open clears it and skips the undo pass.
    pub(crate) fn mark_clean_shutdown(&self) -> Result<()> {
        let r = self.heap.region();
        r.write_pod(self.catalog + CAT_CLEAN, &1u64)?;
        r.persist(self.catalog + CAT_CLEAN, 8)?;
        Ok(())
    }

    /// Zero the recovery-progress word: recovery completed. The single
    /// publish-last store closing the attempt opened by
    /// [`begin_recovery_attempt`].
    pub(crate) fn finish_recovery_attempt(&self) -> Result<()> {
        let r = self.heap.region();
        // pmlint: publish(recovery-progress)
        r.store_u64_release(self.catalog + CAT_PROGRESS, 0)?;
        r.persist(self.catalog + CAT_PROGRESS, 8)?;
        Ok(())
    }

    /// Durably published last commit timestamp.
    pub fn last_cts(&self) -> Result<u64> {
        // pmlint: observe(catalog-cts)
        Ok(self
            .heap
            .region()
            .load_u64_acquire(self.catalog + CAT_LAST_CTS)?)
    }

    /// Durably publish a commit timestamp — the commit's linearization
    /// point (one 8-byte persist).
    pub fn publish_cts(&self, cts: u64) -> Result<()> {
        let r = self.heap.region();
        // pmlint: publish(catalog-cts)
        r.store_u64_release(self.catalog + CAT_LAST_CTS, cts)?;
        r.persist(self.catalog + CAT_LAST_CTS, 8)?;
        Ok(())
    }

    /// Run the commit protocol: stamp the transaction's writes, sync the
    /// shadow log (when configured) and only then durably publish the
    /// commit timestamp to NVM — the ordering that keeps the shadow log a
    /// superset of the published state.
    pub(crate) fn commit_txn(
        &mut self,
        mgr: &mut txn::TxnManager,
        tx: &mut txn::Transaction,
    ) -> Result<u64> {
        let NvBackend {
            heap,
            catalog,
            tables,
            registry,
            shadow,
            ..
        } = self;
        let mut publisher = ShadowedNvPublisher {
            heap: heap.clone(),
            catalog: *catalog,
            shadow: shadow.as_mut(),
        };
        let cts = {
            let mut refs: Vec<&mut dyn TableStore> = tables
                .iter_mut()
                .map(|t| t as &mut dyn TableStore)
                .collect();
            mgr.commit(tx, &mut refs, &mut publisher)?
        };
        registry.release(tx.tid)?;
        Ok(cts)
    }

    /// Create a table and durably register it.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<usize> {
        if self.tables.len() >= MAX_TABLES {
            return Err(EngineError::Catalog(format!(
                "table limit {MAX_TABLES} reached"
            )));
        }
        if self.names.iter().any(|n| n == name) {
            return Err(EngineError::Catalog(format!(
                "duplicate table name {name:?}"
            )));
        }
        let table = NvTable::create(&self.heap, schema)?;
        let name_ptr = store_string(&self.heap, name).map_err(EngineError::Storage)?;
        let idx_block = self.heap.alloc(IDX_BLOCK_SIZE)?;
        let r = self.heap.region();
        r.write_pod(idx_block + IDX_COUNT, &0u64)?;
        r.persist(idx_block + IDX_COUNT, 8)?;

        let t = self.tables.len() as u64;
        let base = self.catalog + CAT_ENTRIES + t * CAT_ENTRY_STRIDE;
        r.write_pod(base, &name_ptr)?;
        r.write_pod(base + 8, &table.root_offset())?;
        r.write_pod(base + 16, &idx_block)?;
        r.persist(base, CAT_ENTRY_STRIDE)?;
        // Publish.
        // pmlint: publish(catalog-ntables)
        r.store_u64_release(self.catalog + CAT_NTABLES, t + 1)?;
        r.persist(self.catalog + CAT_NTABLES, 8)?;

        self.tables.push(table);
        self.names.push(name.to_owned());
        self.indexes.push(NvTableIndexes {
            hash: Vec::new(),
            ordered: Vec::new(),
        });
        // Re-baseline the shadow checkpoint so rung 2 knows the new table
        // even when its NVM root is unreadable. DDL is a quiesced point, so
        // the full-state export is valid. A crash between the NVM publish
        // above and this write loses only an empty table from the fallback
        // path.
        let cts = self.last_cts()?;
        let NvBackend {
            shadow,
            names,
            tables,
            ..
        } = self;
        if let Some(sw) = shadow {
            sw.checkpoint_full(names, tables, cts)?;
        }
        Ok(t as usize)
    }

    fn idx_block(&self, table: usize) -> Result<u64> {
        let base = self.catalog + CAT_ENTRIES + table as u64 * CAT_ENTRY_STRIDE;
        Ok(self.heap.region().read_pod(base + 16)?)
    }

    /// Create and durably register a persistent hash index over `column`,
    /// populated from the table's current rows.
    pub fn create_hash_index(&mut self, table: usize, column: usize) -> Result<()> {
        let total = self.indexes[table].hash.len() + self.indexes[table].ordered.len();
        if total >= MAX_INDEXES_PER_TABLE {
            return Err(EngineError::Catalog("index limit reached".into()));
        }
        let nbuckets = (self.tables[table].row_count() * 2).max(1024);
        let idx = NvHashIndex::build_from(&self.heap, &self.tables[table], column, nbuckets)?;
        let idx_block = self.idx_block(table)?;
        let r = self.heap.region();
        // pmlint: observe(index-count)
        let count: u64 = r.load_u64_acquire(idx_block + IDX_COUNT)?;
        let ib = idx_block + IDX_ENTRIES + count * IDX_ENTRY_STRIDE;
        r.write_pod(ib, &KIND_HASH)?;
        r.write_pod(ib + 8, &(column as u64))?;
        r.write_pod(ib + 16, &idx.desc_offset())?;
        r.persist(ib, IDX_ENTRY_STRIDE)?;
        // pmlint: publish(index-count)
        r.store_u64_release(idx_block + IDX_COUNT, count + 1)?;
        r.persist(idx_block + IDX_COUNT, 8)?;
        self.indexes[table].hash.push(idx);
        Ok(())
    }

    /// Create and durably register a persistent ordered (skip-list) index
    /// over `column`, populated from the table's current rows.
    pub fn create_ordered_index(&mut self, table: usize, column: usize) -> Result<()> {
        let total = self.indexes[table].hash.len() + self.indexes[table].ordered.len();
        if total >= MAX_INDEXES_PER_TABLE {
            return Err(EngineError::Catalog("index limit reached".into()));
        }
        let oi = NvOrderedIndex::build_from(&self.heap, &self.tables[table], column)?;
        let idx_block = self.idx_block(table)?;
        let r = self.heap.region();
        // pmlint: observe(index-count)
        let count: u64 = r.load_u64_acquire(idx_block + IDX_COUNT)?;
        let ib = idx_block + IDX_ENTRIES + count * IDX_ENTRY_STRIDE;
        r.write_pod(ib, &KIND_ORDERED)?;
        r.write_pod(ib + 8, &(column as u64))?;
        r.write_pod(ib + 16, &oi.desc_offset())?;
        r.persist(ib, IDX_ENTRY_STRIDE)?;
        // pmlint: publish(index-count)
        r.store_u64_release(idx_block + IDX_COUNT, count + 1)?;
        r.persist(idx_block + IDX_COUNT, 8)?;
        self.indexes[table].ordered.push(oi);
        Ok(())
    }

    /// Notify indexes of a new row version.
    pub fn index_insert(
        &mut self,
        table: usize,
        values: &[storage::Value],
        row: u64,
    ) -> Result<()> {
        for idx in &self.indexes[table].hash {
            idx.insert(&values[idx.column()], row)?;
        }
        for idx in &self.indexes[table].ordered {
            idx.insert(&values[idx.column()], row)?;
        }
        Ok(())
    }

    /// Merge a table and rebuild its indexes (row ids shift), in the
    /// exhaustion-safe order: plan the merge read-only, build every
    /// replacement index against the planned post-merge row space, and
    /// only then execute the merge and swap the descriptors. Every
    /// fallible allocation happens before anything is published, so a
    /// capacity failure at any point unwinds to a clean abort — old table
    /// and old indexes fully intact. (A crash between the pair swap and
    /// the descriptor swaps leaks the new indexes until the next merge.)
    pub fn merge_table(
        &mut self,
        table: usize,
        snapshot: u64,
    ) -> Result<storage::table_ops::MergeStats> {
        // Phase 1: plan (read-only) and build replacement indexes against
        // the plan. Post-merge row ids are positions in the survivor list.
        let plan = self.tables[table].merge_plan(snapshot)?;
        let idx_block = self.idx_block(table)?;
        let r = self.heap.region().clone();
        // Walk the catalogue entries so slot positions stay aligned.
        // pmlint: observe(index-count)
        let icount: u64 = r.load_u64_acquire(idx_block + IDX_COUNT)?;
        let mut new_hash: Vec<NvHashIndex> = Vec::new();
        let mut new_ordered: Vec<NvOrderedIndex> = Vec::new();
        let destroy_new = |hash: Vec<NvHashIndex>, ordered: Vec<NvOrderedIndex>| {
            for idx in hash {
                let _ = idx.destroy();
            }
            for idx in ordered {
                let _ = idx.destroy();
            }
        };
        for i in 0..icount {
            let ib = idx_block + IDX_ENTRIES + i * IDX_ENTRY_STRIDE;
            let kind: u64 = r.read_pod(ib)?;
            let column: u64 = r.read_pod(ib + 8)?;
            let built: Result<()> = (|| {
                match kind {
                    KIND_HASH => {
                        let nbuckets = (plan.rows().len() as u64 * 2).max(1024);
                        new_hash.push(NvHashIndex::build_from_rows(
                            &self.heap,
                            column as usize,
                            nbuckets,
                            plan.rows(),
                        )?);
                    }
                    KIND_ORDERED => {
                        let dtype = self.tables[table].schema().column(column as usize)?.dtype;
                        new_ordered.push(NvOrderedIndex::build_from_rows(
                            &self.heap,
                            column as usize,
                            dtype,
                            plan.rows(),
                        )?);
                    }
                    _ => {}
                }
                Ok(())
            })();
            if let Err(e) = built {
                destroy_new(new_hash, new_ordered);
                return Err(e);
            }
        }

        // Phase 2: log and execute. The merge record is synced *before*
        // execution, so a rung-2 replay reproduces the post-merge row-id
        // space that later records use.
        if let Some(sw) = &mut self.shadow {
            if let Err(e) = sw.log_merge_synced(table, snapshot) {
                destroy_new(new_hash, new_ordered);
                return Err(e);
            }
        }
        let stats = match self.tables[table].merge_from_plan(plan) {
            Ok(stats) => stats,
            Err(e) => {
                destroy_new(new_hash, new_ordered);
                // The log now carries a merge record for a merge that never
                // executed; re-baseline the checkpoint so bounded replay
                // starts past it (best-effort — a wedged log already forces
                // read-only until reclamation recreates it).
                if let Some(sw) = &mut self.shadow {
                    let _ = sw.checkpoint_full(&self.names, &self.tables, snapshot);
                }
                return Err(e.into());
            }
        };

        // Phase 3: publish the replacement indexes — descriptor stores and
        // frees only, no allocation left to fail.
        let mut hash_new = new_hash.into_iter();
        let mut ordered_new = new_ordered.into_iter();
        let mut hash_slot = 0usize;
        let mut ordered_slot = 0usize;
        for i in 0..icount {
            let ib = idx_block + IDX_ENTRIES + i * IDX_ENTRY_STRIDE;
            let kind: u64 = r.read_pod(ib)?;
            match kind {
                KIND_HASH => {
                    let Some(new_idx) = hash_new.next() else {
                        return Err(EngineError::Unsupported(
                            "index catalogue changed during merge",
                        ));
                    };
                    r.write_pod(ib + 16, &new_idx.desc_offset())?;
                    r.persist(ib + 16, 8)?;
                    let old = std::mem::replace(&mut self.indexes[table].hash[hash_slot], new_idx);
                    old.destroy()?;
                    hash_slot += 1;
                }
                KIND_ORDERED => {
                    let Some(new_idx) = ordered_new.next() else {
                        return Err(EngineError::Unsupported(
                            "index catalogue changed during merge",
                        ));
                    };
                    r.write_pod(ib + 16, &new_idx.desc_offset())?;
                    r.persist(ib + 16, 8)?;
                    let old =
                        std::mem::replace(&mut self.indexes[table].ordered[ordered_slot], new_idx);
                    old.destroy()?;
                    ordered_slot += 1;
                }
                _ => {}
            }
        }
        Ok(stats)
    }
}

/// Durably bump the catalogue's recovery-progress word and return the new
/// attempt number (1 = first attempt since the last clean shutdown or
/// completed recovery; >1 = this recovery is itself re-entrant, an earlier
/// attempt was cut short).
///
/// This is the one deliberately *non-idempotent* recovery-time store: a
/// monotone counter, bumped before recovery mutates anything else and
/// zeroed by [`NvBackend::finish_recovery_attempt`] only after the ladder,
/// undo pass, and shadow re-baseline have all completed. Every other
/// recovery mutation is idempotent by re-derivation, so replaying a
/// partial attempt is safe — the counter exists to make interrupted
/// attempts *observable* (and bounded) rather than to gate replay.
///
/// Runs before the backend is attached, straight off the heap root; if no
/// catalogue root is published yet the attach will fail anyway, so the
/// attempt is reported as 0 and nothing is written.
/// Read the clean-shutdown marker and, if set, durably clear it before
/// returning — the marker must never survive into the run it admits, or a
/// later hard crash would masquerade as clean. Returns whether the previous
/// process shut down gracefully. A region with no catalogue root reports
/// `false`.
pub(crate) fn take_clean_shutdown(heap: &NvmHeap) -> Result<bool> {
    let catalog = heap.root()?;
    if catalog == 0 {
        return Ok(false);
    }
    let r = heap.region();
    let clean: u64 = r.read_pod(catalog + CAT_CLEAN)?;
    if clean != 0 {
        r.write_pod(catalog + CAT_CLEAN, &0u64)?;
        r.persist(catalog + CAT_CLEAN, 8)?;
    }
    Ok(clean != 0)
}

pub(crate) fn begin_recovery_attempt(heap: &NvmHeap) -> Result<u64> {
    let catalog = heap.root()?;
    if catalog == 0 {
        return Ok(0);
    }
    let r = heap.region();
    // pmlint: observe(recovery-progress)
    let prior: u64 = r.load_u64_acquire(catalog + CAT_PROGRESS)?;
    let attempt = prior.saturating_add(1);
    // pmlint: publish(recovery-progress)
    r.store_u64_release(catalog + CAT_PROGRESS, attempt)?;
    r.persist(catalog + CAT_PROGRESS, 8)?;
    Ok(attempt)
}

/// Durable commit publish for the NVM backend: one 8-byte persist of the
/// global commit timestamp in the catalogue.
pub struct NvPublisher {
    heap: NvmHeap,
    catalog: u64,
}

impl txn::CommitPublish for NvPublisher {
    fn publish(&mut self, cts: u64, _txn: &txn::Transaction) -> txn::Result<()> {
        let r = self.heap.region();
        // pmlint: publish(catalog-cts)
        r.store_u64_release(self.catalog + CAT_LAST_CTS, cts)
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        r.persist(self.catalog + CAT_LAST_CTS, 8)
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        Ok(())
    }
}

/// Commit publish used by [`NvBackend::commit_txn`]: shadow-log sync first
/// (when configured), then the one-persist NVM publish. The order is the
/// rung-2 invariant — a commit the NVM image claims must be in the log.
struct ShadowedNvPublisher<'a> {
    heap: NvmHeap,
    catalog: u64,
    shadow: Option<&'a mut ShadowWal>,
}

impl txn::CommitPublish for ShadowedNvPublisher<'_> {
    fn publish(&mut self, cts: u64, txn: &txn::Transaction) -> txn::Result<()> {
        if let Some(sw) = self.shadow.as_deref_mut() {
            sw.log_commit_synced(txn.tid, cts)
                .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        }
        let r = self.heap.region();
        // pmlint: publish(catalog-cts)
        r.store_u64_release(self.catalog + CAT_LAST_CTS, cts)
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        r.persist(self.catalog + CAT_LAST_CTS, 8)
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        Ok(())
    }
}
