//! The Hyrise-NV backend: persistent catalogue + NVM tables + persistent
//! hash indexes.
//!
//! Persistent catalogue layout (the heap's root object):
//!
//! ```text
//! 0:  last_cts u64                 — the durable commit-timestamp publish
//! 8:  ntables  u64                 — publish point for CREATE TABLE
//! 16: per table (stride 24): name_ptr | table_root | idx_block
//! idx_block: count u64 | per index (stride 24): kind | column | desc
//! ```
//!
//! `kind` 0 = persistent hash (desc = `NvHashIndex` descriptor), 1 =
//! persistent ordered skip list (desc = `NvOrderedIndex` descriptor). Both
//! are re-attached on restart in O(1) — no index is ever rebuilt on this
//! backend, matching the paper's "table *and index* structures on NVM".

use std::sync::Arc;

use index::{NvHashIndex, NvOrderedIndex};
use nvm::{AllocatorRecovery, LatencyModel, NvmHeap, NvmRegion};
use storage::nv::{read_string, store_string, NvTable};
use storage::{Schema, TableStore};

use crate::error::{EngineError, Result};
use crate::txn_registry::TxnRegistry;
use crate::{MAX_INDEXES_PER_TABLE, MAX_TABLES};

const CAT_LAST_CTS: u64 = 0;
const CAT_NTABLES: u64 = 8;
const CAT_REGISTRY: u64 = 16;
const CAT_ENTRIES: u64 = 24;
const CAT_ENTRY_STRIDE: u64 = 24;
const CAT_SIZE: u64 = CAT_ENTRIES + MAX_TABLES as u64 * CAT_ENTRY_STRIDE;

const IDX_COUNT: u64 = 0;
const IDX_ENTRIES: u64 = 8;
const IDX_ENTRY_STRIDE: u64 = 24;
const IDX_BLOCK_SIZE: u64 = IDX_ENTRIES + MAX_INDEXES_PER_TABLE as u64 * IDX_ENTRY_STRIDE;

const KIND_HASH: u64 = 0;
const KIND_ORDERED: u64 = 1;

/// Per-table index sets — all persistent on this backend.
pub(crate) struct NvTableIndexes {
    /// Persistent hash indexes (attached, never rebuilt).
    pub hash: Vec<NvHashIndex>,
    /// Persistent ordered (skip-list) indexes (attached, never rebuilt).
    pub ordered: Vec<NvOrderedIndex>,
}

/// The NVM durability backend.
pub struct NvBackend {
    pub(crate) heap: NvmHeap,
    catalog: u64,
    pub(crate) tables: Vec<NvTable>,
    pub(crate) names: Vec<String>,
    pub(crate) indexes: Vec<NvTableIndexes>,
    pub(crate) registry: TxnRegistry,
}

impl NvBackend {
    /// Format a fresh region and create an empty catalogue.
    pub fn create(capacity: u64, latency: LatencyModel) -> Result<NvBackend> {
        let region = Arc::new(NvmRegion::new(capacity, latency));
        let heap = NvmHeap::format(region)?;
        let catalog = heap.alloc(CAT_SIZE)?;
        let registry = TxnRegistry::create(&heap)?;
        let r = heap.region();
        r.write_pod(catalog + CAT_LAST_CTS, &0u64)?;
        r.write_pod(catalog + CAT_NTABLES, &0u64)?;
        r.write_pod(catalog + CAT_REGISTRY, &registry.base_offset())?;
        r.persist(catalog, CAT_ENTRIES)?;
        heap.set_root(catalog)?;
        Ok(NvBackend {
            heap,
            catalog,
            tables: Vec::new(),
            names: Vec::new(),
            indexes: Vec::new(),
            registry,
        })
    }

    /// Re-open an existing region after a (simulated) power failure: run the
    /// allocator recovery scan, then re-attach the catalogue, tables (probe
    /// rebuild), and indexes. Returns the backend plus the allocator report.
    pub fn open(region: Arc<NvmRegion>) -> Result<(NvBackend, AllocatorRecovery)> {
        let (heap, alloc_report) = NvmHeap::open(region)?;
        Ok((Self::attach(heap)?, alloc_report))
    }

    /// Re-attach catalogue, tables, and indexes over an already-recovered
    /// heap (the restart path times this separately from the allocator
    /// scan).
    pub fn attach(heap: NvmHeap) -> Result<NvBackend> {
        let catalog = heap.root()?;
        if catalog == 0 {
            return Err(EngineError::Catalog("no catalogue root in region".into()));
        }
        let r = heap.region().clone();
        let ntables: u64 = r.read_pod(catalog + CAT_NTABLES)?;
        if ntables as usize > MAX_TABLES {
            return Err(EngineError::Catalog("implausible table count".into()));
        }
        let mut tables = Vec::with_capacity(ntables as usize);
        let mut names = Vec::with_capacity(ntables as usize);
        let mut indexes = Vec::with_capacity(ntables as usize);
        for t in 0..ntables {
            let base = catalog + CAT_ENTRIES + t * CAT_ENTRY_STRIDE;
            let name_ptr: u64 = r.read_pod(base)?;
            let table_root: u64 = r.read_pod(base + 8)?;
            let idx_block: u64 = r.read_pod(base + 16)?;
            names.push(read_string(&heap, name_ptr).map_err(EngineError::Storage)?);
            let table = NvTable::open(&heap, table_root)?;
            let mut set = NvTableIndexes {
                hash: Vec::new(),
                ordered: Vec::new(),
            };
            let icount: u64 = r.read_pod(idx_block + IDX_COUNT)?;
            if icount as usize > MAX_INDEXES_PER_TABLE {
                return Err(EngineError::Catalog("implausible index count".into()));
            }
            for i in 0..icount {
                let ib = idx_block + IDX_ENTRIES + i * IDX_ENTRY_STRIDE;
                let kind: u64 = r.read_pod(ib)?;
                let column: u64 = r.read_pod(ib + 8)?;
                let desc: u64 = r.read_pod(ib + 16)?;
                let _ = column;
                match kind {
                    KIND_HASH => set.hash.push(NvHashIndex::open(&heap, desc)?),
                    KIND_ORDERED => set.ordered.push(NvOrderedIndex::open(&heap, desc)?),
                    _ => return Err(EngineError::Catalog("unknown index kind".into())),
                }
            }
            tables.push(table);
            indexes.push(set);
        }
        let registry_ptr: u64 = r.read_pod(catalog + CAT_REGISTRY)?;
        let registry = TxnRegistry::open(&heap, registry_ptr)?;
        Ok(NvBackend {
            heap,
            catalog,
            tables,
            names,
            indexes,
            registry,
        })
    }

    /// Counts of (persistently re-attached, DRAM-rebuilt) indexes. On this
    /// backend every index is persistent, so nothing is ever rebuilt.
    pub fn index_counts(&self) -> (u64, u64) {
        let attached = self
            .indexes
            .iter()
            .map(|s| (s.hash.len() + s.ordered.len()) as u64)
            .sum();
        (attached, 0)
    }

    /// A cloneable durable-publish handle for the commit protocol.
    pub fn publisher(&self) -> NvPublisher {
        NvPublisher {
            heap: self.heap.clone(),
            catalog: self.catalog,
        }
    }

    /// The shared region (crash injection, stats, clock).
    pub fn region(&self) -> &Arc<NvmRegion> {
        self.heap.region()
    }

    /// The persistent heap.
    pub fn heap(&self) -> &NvmHeap {
        &self.heap
    }

    /// Durably published last commit timestamp.
    pub fn last_cts(&self) -> Result<u64> {
        Ok(self.heap.region().read_pod(self.catalog + CAT_LAST_CTS)?)
    }

    /// Durably publish a commit timestamp — the commit's linearization
    /// point (one 8-byte persist).
    pub fn publish_cts(&self, cts: u64) -> Result<()> {
        let r = self.heap.region();
        r.write_pod(self.catalog + CAT_LAST_CTS, &cts)?;
        r.persist(self.catalog + CAT_LAST_CTS, 8)?;
        Ok(())
    }

    /// Create a table and durably register it.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<usize> {
        if self.tables.len() >= MAX_TABLES {
            return Err(EngineError::Catalog(format!(
                "table limit {MAX_TABLES} reached"
            )));
        }
        if self.names.iter().any(|n| n == name) {
            return Err(EngineError::Catalog(format!("duplicate table name {name:?}")));
        }
        let table = NvTable::create(&self.heap, schema)?;
        let name_ptr = store_string(&self.heap, name).map_err(EngineError::Storage)?;
        let idx_block = self.heap.alloc(IDX_BLOCK_SIZE)?;
        let r = self.heap.region();
        r.write_pod(idx_block + IDX_COUNT, &0u64)?;
        r.persist(idx_block + IDX_COUNT, 8)?;

        let t = self.tables.len() as u64;
        let base = self.catalog + CAT_ENTRIES + t * CAT_ENTRY_STRIDE;
        r.write_pod(base, &name_ptr)?;
        r.write_pod(base + 8, &table.root_offset())?;
        r.write_pod(base + 16, &idx_block)?;
        r.persist(base, CAT_ENTRY_STRIDE)?;
        // Publish.
        r.write_pod(self.catalog + CAT_NTABLES, &(t + 1))?;
        r.persist(self.catalog + CAT_NTABLES, 8)?;

        self.tables.push(table);
        self.names.push(name.to_owned());
        self.indexes.push(NvTableIndexes {
            hash: Vec::new(),
            ordered: Vec::new(),
        });
        Ok(t as usize)
    }

    fn idx_block(&self, table: usize) -> Result<u64> {
        let base = self.catalog + CAT_ENTRIES + table as u64 * CAT_ENTRY_STRIDE;
        Ok(self.heap.region().read_pod(base + 16)?)
    }

    /// Create and durably register a persistent hash index over `column`,
    /// populated from the table's current rows.
    pub fn create_hash_index(&mut self, table: usize, column: usize) -> Result<()> {
        let total = self.indexes[table].hash.len() + self.indexes[table].ordered.len();
        if total >= MAX_INDEXES_PER_TABLE {
            return Err(EngineError::Catalog("index limit reached".into()));
        }
        let nbuckets = (self.tables[table].row_count() * 2).max(1024);
        let idx = NvHashIndex::build_from(&self.heap, &self.tables[table], column, nbuckets)?;
        let idx_block = self.idx_block(table)?;
        let r = self.heap.region();
        let count: u64 = r.read_pod(idx_block + IDX_COUNT)?;
        let ib = idx_block + IDX_ENTRIES + count * IDX_ENTRY_STRIDE;
        r.write_pod(ib, &KIND_HASH)?;
        r.write_pod(ib + 8, &(column as u64))?;
        r.write_pod(ib + 16, &idx.desc_offset())?;
        r.persist(ib, IDX_ENTRY_STRIDE)?;
        r.write_pod(idx_block + IDX_COUNT, &(count + 1))?;
        r.persist(idx_block + IDX_COUNT, 8)?;
        self.indexes[table].hash.push(idx);
        Ok(())
    }

    /// Create and durably register a persistent ordered (skip-list) index
    /// over `column`, populated from the table's current rows.
    pub fn create_ordered_index(&mut self, table: usize, column: usize) -> Result<()> {
        let total = self.indexes[table].hash.len() + self.indexes[table].ordered.len();
        if total >= MAX_INDEXES_PER_TABLE {
            return Err(EngineError::Catalog("index limit reached".into()));
        }
        let oi = NvOrderedIndex::build_from(&self.heap, &self.tables[table], column)?;
        let idx_block = self.idx_block(table)?;
        let r = self.heap.region();
        let count: u64 = r.read_pod(idx_block + IDX_COUNT)?;
        let ib = idx_block + IDX_ENTRIES + count * IDX_ENTRY_STRIDE;
        r.write_pod(ib, &KIND_ORDERED)?;
        r.write_pod(ib + 8, &(column as u64))?;
        r.write_pod(ib + 16, &oi.desc_offset())?;
        r.persist(ib, IDX_ENTRY_STRIDE)?;
        r.write_pod(idx_block + IDX_COUNT, &(count + 1))?;
        r.persist(idx_block + IDX_COUNT, 8)?;
        self.indexes[table].ordered.push(oi);
        Ok(())
    }

    /// Notify indexes of a new row version.
    pub fn index_insert(&mut self, table: usize, values: &[storage::Value], row: u64) -> Result<()> {
        for idx in &self.indexes[table].hash {
            idx.insert(&values[idx.column()], row)?;
        }
        for idx in &self.indexes[table].ordered {
            idx.insert(&values[idx.column()], row)?;
        }
        Ok(())
    }

    /// Merge a table and rebuild its indexes (row ids shift). Hash indexes
    /// are rebuilt persistently and swapped in the catalogue (new index
    /// built and registered before the old one is destroyed — a crash in
    /// between leaks the old index until the next merge); ordered indexes
    /// are rebuilt in DRAM.
    pub fn merge_table(
        &mut self,
        table: usize,
        snapshot: u64,
    ) -> Result<storage::table_ops::MergeStats> {
        let stats = self.tables[table].merge(snapshot)?;
        let idx_block = self.idx_block(table)?;
        let r = self.heap.region().clone();
        // Walk the catalogue entries so slot positions stay aligned.
        let icount: u64 = r.read_pod(idx_block + IDX_COUNT)?;
        let mut hash_slot = 0usize;
        let mut ordered_slot = 0usize;
        for i in 0..icount {
            let ib = idx_block + IDX_ENTRIES + i * IDX_ENTRY_STRIDE;
            let kind: u64 = r.read_pod(ib)?;
            let column: u64 = r.read_pod(ib + 8)?;
            match kind {
                KIND_HASH => {
                    let nbuckets = (self.tables[table].row_count() * 2).max(1024);
                    let new_idx = NvHashIndex::build_from(
                        &self.heap,
                        &self.tables[table],
                        column as usize,
                        nbuckets,
                    )?;
                    r.write_pod(ib + 16, &new_idx.desc_offset())?;
                    r.persist(ib + 16, 8)?;
                    let old =
                        std::mem::replace(&mut self.indexes[table].hash[hash_slot], new_idx);
                    old.destroy()?;
                    hash_slot += 1;
                }
                KIND_ORDERED => {
                    let new_idx = NvOrderedIndex::build_from(
                        &self.heap,
                        &self.tables[table],
                        column as usize,
                    )?;
                    r.write_pod(ib + 16, &new_idx.desc_offset())?;
                    r.persist(ib + 16, 8)?;
                    let old = std::mem::replace(
                        &mut self.indexes[table].ordered[ordered_slot],
                        new_idx,
                    );
                    old.destroy()?;
                    ordered_slot += 1;
                }
                _ => {}
            }
        }
        Ok(stats)
    }
}

/// Durable commit publish for the NVM backend: one 8-byte persist of the
/// global commit timestamp in the catalogue.
pub struct NvPublisher {
    heap: NvmHeap,
    catalog: u64,
}

impl txn::CommitPublish for NvPublisher {
    fn publish(&mut self, cts: u64, _txn: &txn::Transaction) -> txn::Result<()> {
        let r = self.heap.region();
        r.write_pod(self.catalog + CAT_LAST_CTS, &cts)
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        r.persist(self.catalog + CAT_LAST_CTS, 8)
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        Ok(())
    }
}
