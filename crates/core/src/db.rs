//! The `Database` façade.

use nvm::CrashPolicy;
use storage::mvcc;
use storage::{RowId, ScanResult, Schema, TableStore, Value};
use txn::{Transaction, TxnManager};
use wal::LogWriter;

use crate::backend_nv::NvBackend;
use crate::backend_vol::VolatileBackend;
use crate::backend_wal::WalBackend;
use crate::config::{DurabilityConfig, IndexKind};
use crate::error::{EngineError, Result};
use crate::report::{timed_phase, IntegrityReport, RecoveryReport};

/// Handle to a table in the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub usize);

enum Backend {
    Nv(NvBackend),
    Wal(WalBackend),
    Volatile(VolatileBackend),
}

/// An embedded database instance over one durability backend.
///
/// The façade is single-threaded by design (one writer, as in the paper's
/// per-table delta append model); benchmark drivers issue transactions
/// back-to-back.
pub struct Database {
    backend: Backend,
    mgr: TxnManager,
    config: DurabilityConfig,
}

impl Database {
    /// Create a fresh database with the given durability configuration.
    pub fn create(config: DurabilityConfig) -> Result<Database> {
        let backend = match &config {
            DurabilityConfig::Nvm { capacity, latency } => {
                Backend::Nv(NvBackend::create(*capacity, *latency)?)
            }
            DurabilityConfig::Wal(cfg) => Backend::Wal(WalBackend::create(cfg.clone())?),
            DurabilityConfig::Volatile => Backend::Volatile(VolatileBackend::create()),
        };
        Ok(Database {
            backend,
            mgr: TxnManager::new(),
            config,
        })
    }

    /// The active durability mode ("nvm" / "wal" / "volatile").
    pub fn mode(&self) -> &'static str {
        self.config.mode_name()
    }

    /// Simulated nanoseconds charged so far (NVM flush/fence or WAL sync).
    pub fn simulated_ns(&self) -> u64 {
        match &self.backend {
            Backend::Nv(b) => b.region().clock().now_ns(),
            Backend::Wal(b) => b.clock().now_ns(),
            Backend::Volatile(_) => 0,
        }
    }

    /// NVM primitive counters (zeroes for other backends).
    pub fn nvm_stats(&self) -> nvm::StatsSnapshot {
        match &self.backend {
            Backend::Nv(b) => b.region().stats(),
            _ => nvm::StatsSnapshot::default(),
        }
    }

    /// WAL activity counters (zeroes for other backends).
    pub fn wal_stats(&self) -> wal::WalStats {
        match &self.backend {
            Backend::Wal(b) => b.wal_stats(),
            _ => wal::WalStats::default(),
        }
    }

    /// The NVM backend, if active (advanced instrumentation).
    pub fn nv_backend(&self) -> Option<&NvBackend> {
        match &self.backend {
            Backend::Nv(b) => Some(b),
            _ => None,
        }
    }

    /// The transaction manager's committed-state watermark.
    pub fn last_committed(&self) -> u64 {
        self.mgr.last_committed()
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        let id = match &mut self.backend {
            Backend::Nv(b) => b.create_table(name, schema)?,
            Backend::Wal(b) => {
                let cts = self.mgr.last_committed();
                b.create_table(name, schema, cts)?
            }
            Backend::Volatile(b) => b.create_table(name, schema)?,
        };
        Ok(TableId(id))
    }

    /// Look up a table by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        let names = match &self.backend {
            Backend::Nv(b) => &b.names,
            Backend::Wal(b) => &b.names,
            Backend::Volatile(b) => &b.names,
        };
        names.iter().position(|n| n == name).map(TableId)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        match &self.backend {
            Backend::Nv(b) => b.tables.len(),
            Backend::Wal(b) => b.tables.len(),
            Backend::Volatile(b) => b.tables.len(),
        }
    }

    /// Create an index over `(table, column)`.
    pub fn create_index(&mut self, table: TableId, column: usize, kind: IndexKind) -> Result<()> {
        self.check_table(table)?;
        match &mut self.backend {
            Backend::Nv(b) => match kind {
                IndexKind::Hash => b.create_hash_index(table.0, column),
                IndexKind::Ordered => b.create_ordered_index(table.0, column),
            },
            Backend::Wal(b) => b.create_index(table.0, column, kind),
            Backend::Volatile(b) => b.create_index(table.0, column, kind),
        }
    }

    fn check_table(&self, table: TableId) -> Result<()> {
        if table.0 < self.table_count() {
            Ok(())
        } else {
            Err(EngineError::Catalog(format!(
                "unknown table id {}",
                table.0
            )))
        }
    }

    /// Crate-internal access to a table's store (query operators).
    pub(crate) fn table_store(&self, table: TableId) -> Result<&dyn TableStore> {
        self.table(table)
    }

    fn table(&self, table: TableId) -> Result<&dyn TableStore> {
        self.check_table(table)?;
        Ok(match &self.backend {
            Backend::Nv(b) => &b.tables[table.0],
            Backend::Wal(b) => &b.tables[table.0],
            Backend::Volatile(b) => &b.tables[table.0],
        })
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction with a snapshot of the current committed state.
    pub fn begin(&mut self) -> Transaction {
        self.mgr.begin()
    }

    /// Insert a row.
    pub fn insert(
        &mut self,
        tx: &mut Transaction,
        table: TableId,
        values: &[Value],
    ) -> Result<RowId> {
        self.check_table(table)?;
        let t = table.0;
        let marker = tx.marker();
        let row = match &mut self.backend {
            Backend::Nv(b) => {
                // Write-ahead registry entry: the row id an insert will get
                // is deterministic (next physical slot), so recovery can be
                // told about it before the row materializes.
                let row = b.tables[t].row_count();
                b.registry.record_insert(tx.tid, t, row)?;
                let got = b.tables[t].insert_version(values, marker)?;
                debug_assert_eq!(got, row);
                b.index_insert(t, values, got)?;
                got
            }
            Backend::Wal(b) => {
                let row = b.tables[t].insert_version(values, marker)?;
                b.log_insert(tx.tid, t, row, values)?;
                b.index_insert(t, values, row);
                row
            }
            Backend::Volatile(b) => {
                let row = b.tables[t].insert_version(values, marker)?;
                b.index_insert(t, values, row);
                row
            }
        };
        tx.record_insert(t, row);
        Ok(row)
    }

    /// Delete (invalidate) a visible row version. Fails with a write
    /// conflict if another transaction holds the row.
    pub fn delete(&mut self, tx: &mut Transaction, table: TableId, row: RowId) -> Result<()> {
        self.check_table(table)?;
        let t = table.0;
        let marker = tx.marker();
        match &mut self.backend {
            Backend::Nv(b) => {
                b.registry.record_invalidate(tx.tid, t, row)?;
                b.tables[t].try_invalidate(row, marker)?;
            }
            Backend::Wal(b) => {
                b.tables[t].try_invalidate(row, marker)?;
                b.log_invalidate(tx.tid, t, row)?;
            }
            Backend::Volatile(b) => b.tables[t].try_invalidate(row, marker)?,
        }
        tx.record_invalidate(t, row);
        Ok(())
    }

    /// Update a visible row version: invalidate + insert the new values.
    /// Returns the new version's row id.
    pub fn update(
        &mut self,
        tx: &mut Transaction,
        table: TableId,
        row: RowId,
        new_values: &[Value],
    ) -> Result<RowId> {
        self.delete(tx, table, row)?;
        self.insert(tx, table, new_values)
    }

    /// Commit: stamp every write with the next commit timestamp, durably
    /// publish it, advance the committed state.
    pub fn commit(&mut self, tx: &mut Transaction) -> Result<u64> {
        match &mut self.backend {
            Backend::Nv(b) => {
                let mut publisher = b.publisher();
                let cts = {
                    let mut refs: Vec<&mut dyn TableStore> = b
                        .tables
                        .iter_mut()
                        .map(|t| t as &mut dyn TableStore)
                        .collect();
                    self.mgr.commit(tx, &mut refs, &mut publisher)?
                };
                b.registry.release(tx.tid)?;
                Ok(cts)
            }
            Backend::Wal(b) => {
                let WalBackend {
                    tables,
                    writer,
                    commits_since_sync,
                    cfg,
                    ..
                } = b;
                let mut publisher = WalPublisher {
                    writer,
                    commits_since_sync,
                    every: cfg.sync_every_n_commits.max(1),
                };
                let mut refs: Vec<&mut dyn TableStore> = tables
                    .iter_mut()
                    .map(|t| t as &mut dyn TableStore)
                    .collect();
                Ok(self.mgr.commit(tx, &mut refs, &mut publisher)?)
            }
            Backend::Volatile(b) => {
                let mut refs: Vec<&mut dyn TableStore> = b
                    .tables
                    .iter_mut()
                    .map(|t| t as &mut dyn TableStore)
                    .collect();
                Ok(self.mgr.commit(tx, &mut refs, &mut txn::NoopPublish)?)
            }
        }
    }

    /// Abort: roll back every pending marker.
    pub fn abort(&mut self, tx: &mut Transaction) -> Result<()> {
        match &mut self.backend {
            Backend::Nv(b) => {
                {
                    let mut refs: Vec<&mut dyn TableStore> = b
                        .tables
                        .iter_mut()
                        .map(|t| t as &mut dyn TableStore)
                        .collect();
                    self.mgr.abort(tx, &mut refs)?;
                }
                b.registry.release(tx.tid)?;
            }
            Backend::Wal(b) => {
                {
                    let mut refs: Vec<&mut dyn TableStore> = b
                        .tables
                        .iter_mut()
                        .map(|t| t as &mut dyn TableStore)
                        .collect();
                    self.mgr.abort(tx, &mut refs)?;
                }
                b.log_abort(tx.tid)?;
            }
            Backend::Volatile(b) => {
                let mut refs: Vec<&mut dyn TableStore> = b
                    .tables
                    .iter_mut()
                    .map(|t| t as &mut dyn TableStore)
                    .collect();
                self.mgr.abort(tx, &mut refs)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    fn materialize(&self, table: TableId, rows: Vec<RowId>) -> Result<Vec<ScanResult>> {
        let t = self.table(table)?;
        rows.into_iter()
            .map(|row| {
                Ok(ScanResult {
                    row,
                    values: t.row_values(row)?,
                })
            })
            .collect()
    }

    /// All rows visible to `tx`.
    pub fn scan_all(&self, tx: &Transaction, table: TableId) -> Result<Vec<ScanResult>> {
        let rows = self.table(table)?.scan_visible(tx.snapshot, tx.tid)?;
        self.materialize(table, rows)
    }

    /// Visible rows with `column == value` (full column scan through the
    /// dictionary; use [`Database::index_lookup`] when an index exists).
    pub fn scan_eq(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        value: &Value,
    ) -> Result<Vec<ScanResult>> {
        let rows = self
            .table(table)?
            .scan_eq(column, value, tx.snapshot, tx.tid)?;
        self.materialize(table, rows)
    }

    /// Visible rows with `lo <= column < hi`.
    pub fn scan_range(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<ScanResult>> {
        let rows = self
            .table(table)?
            .scan_range(column, lo, hi, tx.snapshot, tx.tid)?;
        self.materialize(table, rows)
    }

    /// Point lookup through an index on `(table, column)`; falls back to a
    /// dictionary scan when no index exists. Results are verified against
    /// the base table and MVCC-filtered.
    pub fn index_lookup(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        value: &Value,
    ) -> Result<Vec<ScanResult>> {
        self.check_table(table)?;
        let t = table.0;
        let candidates: Option<Vec<RowId>> = match &self.backend {
            Backend::Nv(b) => {
                if let Some(idx) = b.indexes[t].hash.iter().find(|i| i.column() == column) {
                    Some(idx.lookup(value)?)
                } else if let Some(idx) =
                    b.indexes[t].ordered.iter().find(|i| i.column() == column)
                {
                    Some(idx.lookup(value)?)
                } else {
                    None
                }
            }
            Backend::Wal(b) => {
                if let Some(idx) = b.indexes[t].hash.iter().find(|i| i.column() == column) {
                    Some(idx.lookup(value).to_vec())
                } else {
                    b.indexes[t]
                        .ordered
                        .iter()
                        .find(|i| i.column() == column)
                        .map(|idx| idx.lookup(value).to_vec())
                }
            }
            Backend::Volatile(b) => {
                if let Some(idx) = b.indexes[t].hash.iter().find(|i| i.column() == column) {
                    Some(idx.lookup(value).to_vec())
                } else {
                    b.indexes[t]
                        .ordered
                        .iter()
                        .find(|i| i.column() == column)
                        .map(|idx| idx.lookup(value).to_vec())
                }
            }
        };
        let Some(candidates) = candidates else {
            return self.scan_eq(tx, table, column, value);
        };
        let store = self.table(table)?;
        let mut out = Vec::new();
        for row in candidates {
            // Hash candidates may collide; verify the key, then visibility.
            if store.value(row, column)? != *value {
                continue;
            }
            let b = store.begin_ts(row)?;
            let e = store.end_ts(row)?;
            if mvcc::visible(b, e, tx.snapshot, tx.tid) {
                out.push(ScanResult {
                    row,
                    values: store.row_values(row)?,
                });
            }
        }
        Ok(out)
    }

    /// Range lookup through an ordered index; falls back to a scan.
    pub fn index_range_lookup(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<ScanResult>> {
        self.check_table(table)?;
        let t = table.0;
        let candidates: Option<Vec<RowId>> = match &self.backend {
            Backend::Nv(b) => match b.indexes[t]
                .ordered
                .iter()
                .find(|i| i.column() == column)
            {
                Some(idx) => Some(idx.lookup_range(lo, hi)?),
                None => None,
            },
            Backend::Wal(b) => b.indexes[t]
                .ordered
                .iter()
                .find(|i| i.column() == column)
                .map(|idx| idx.lookup_range(lo, hi)),
            Backend::Volatile(b) => b.indexes[t]
                .ordered
                .iter()
                .find(|i| i.column() == column)
                .map(|idx| idx.lookup_range(lo, hi)),
        };
        let Some(candidates) = candidates else {
            return self.scan_range(tx, table, column, lo, hi);
        };
        let store = self.table(table)?;
        let mut out = Vec::new();
        for row in candidates {
            let b = store.begin_ts(row)?;
            let e = store.end_ts(row)?;
            if mvcc::visible(b, e, tx.snapshot, tx.tid) {
                out.push(ScanResult {
                    row,
                    values: store.row_values(row)?,
                });
            }
        }
        Ok(out)
    }

    /// Total physical rows (all versions) in a table.
    pub fn row_count(&self, table: TableId) -> Result<u64> {
        Ok(self.table(table)?.row_count())
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Merge a table's delta into its main. Requires a quiesced table (no
    /// in-flight transactions touching it).
    pub fn merge(&mut self, table: TableId) -> Result<storage::MergeStats> {
        self.check_table(table)?;
        let snapshot = self.mgr.last_committed();
        match &mut self.backend {
            Backend::Nv(b) => b.merge_table(table.0, snapshot),
            Backend::Wal(b) => b.merge_table(table.0, snapshot),
            Backend::Volatile(b) => b.merge_table(table.0, snapshot),
        }
    }

    /// Write a checkpoint (WAL backend only; no-ops elsewhere — NVM *is*
    /// its own checkpoint). Returns bytes written.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let cts = self.mgr.last_committed();
        match &mut self.backend {
            Backend::Wal(b) => b.checkpoint(cts),
            _ => Ok(0),
        }
    }

    // ------------------------------------------------------------------
    // Crash + restart
    // ------------------------------------------------------------------

    /// Simulate a power failure with all unflushed cache lines lost, then
    /// restart and recover. Returns the phase-timed report.
    pub fn restart_after_crash(&mut self) -> Result<RecoveryReport> {
        self.restart(CrashPolicy::DropUnflushed)
    }

    /// Simulate a power failure with the given crash policy, then restart.
    pub fn restart(&mut self, policy: CrashPolicy) -> Result<RecoveryReport> {
        let mut report = RecoveryReport {
            mode: self.mode(),
            ..Default::default()
        };
        match &mut self.backend {
            Backend::Nv(b) => {
                let region = b.region().clone();
                region.crash(policy);
                self.recover_nv(region, &mut report)?;
            }
            Backend::Wal(b) => {
                // Power failure: the in-memory tables and any unsynced log
                // buffer are gone. Dropping the writer without a final sync
                // models the lost buffer.
                let cfg = b.cfg.clone();
                let paths = b.paths.clone();
                let clock_arc = b.clock().clone();
                let index_specs = b.index_specs.clone();
                let clock = || clock_arc.now_ns();

                // Phase 1: load the newest checkpoint.
                let ckpt = timed_phase(&mut report.phases, "checkpoint load", clock, || {
                    if paths.checkpoint().exists() {
                        wal::load_checkpoint(&paths.checkpoint())
                            .map(Some)
                            .map_err(EngineError::Wal)
                    } else {
                        Ok(None)
                    }
                })?;
                let (mut tables, names, mut last_cts, covered) = match ckpt {
                    Some((meta, tables)) => {
                        (tables, meta.table_names, meta.last_cts, meta.covered_log_pos)
                    }
                    None => (Vec::new(), Vec::new(), 0, 0),
                };

                // Phase 2: replay the log suffix.
                let replay = timed_phase(&mut report.phases, "log replay", clock, || {
                    if paths.log().exists() {
                        wal::replay_log(&paths.log(), covered, &mut tables)
                            .map_err(EngineError::Wal)
                    } else {
                        Ok(wal::ReplayReport::default())
                    }
                })?;
                last_cts = last_cts.max(replay.last_cts);
                report.log_records_replayed = replay.records;

                // Phase 3: rebuild the DRAM indexes.
                let mut nb = WalBackend {
                    writer: LogWriter::open(&paths.log(), clock_arc.clone(), cfg.sync_latency_ns)
                        .map_err(EngineError::Wal)?,
                    cfg,
                    paths,
                    clock: clock_arc.clone(),
                    tables,
                    names,
                    indexes: Vec::new(),
                    index_specs: Vec::new(),
                    commits_since_sync: 0,
                };
                for _ in 0..nb.tables.len() {
                    nb.indexes.push(crate::backend_wal::WalTableIndexes {
                        hash: Vec::new(),
                        ordered: Vec::new(),
                    });
                }
                timed_phase(&mut report.phases, "index rebuild", clock, || {
                    for (t, c, k) in &index_specs {
                        nb.create_index(*t, *c, *k)?;
                    }
                    Ok::<(), EngineError>(())
                })?;
                // create_index re-populated index_specs.
                report.indexes_rebuilt =
                    (nb.indexes.iter().map(|s| s.hash.len() + s.ordered.len()).sum::<usize>())
                        as u64;
                report.last_cts = last_cts;
                report.rows_recovered = nb.tables.iter().map(|t| t.row_count()).sum();

                self.mgr = TxnManager::recovered(last_cts);
                self.backend = Backend::Wal(nb);
            }
            Backend::Volatile(_) => {
                // Everything is lost; the report records the data loss.
                timed_phase(&mut report.phases, "data loss", || 0, || {
                    Ok::<(), EngineError>(())
                })?;
                self.mgr = TxnManager::new();
                self.backend = Backend::Volatile(VolatileBackend::create());
            }
        }
        Ok(report)
    }

    /// The shared NVM recovery path: map the region, re-attach the
    /// catalogue, run the registry undo pass. The crash itself (policy or
    /// scheduled) must already have been materialized on `region`.
    fn recover_nv(
        &mut self,
        region: std::sync::Arc<nvm::NvmRegion>,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        let clock = || region.clock().now_ns();

        // Phase 1: map the region + allocator recovery scan.
        let (heap, alloc_report) =
            timed_phase(&mut report.phases, "heap map + allocator scan", clock, || {
                nvm::NvmHeap::open(region.clone()).map_err(EngineError::Nvm)
            })?;
        report.heap_blocks_scanned = alloc_report.blocks_scanned;

        // Phase 2: catalogue + tables (transient probe rebuild) + index
        // attach/rebuild.
        let mut nb = timed_phase(
            &mut report.phases,
            "catalogue + transient rebuild",
            clock,
            || NvBackend::attach(heap),
        )?;
        let (attached, rebuilt) = nb.index_counts();
        report.indexes_attached = attached;
        report.indexes_rebuilt = rebuilt;

        // Phase 3: registry-driven undo pass — repairs exactly the rows of
        // transactions in flight at the crash, O(in-flight writes), never
        // O(rows).
        let last_cts = nb.last_cts()?;
        let repaired = timed_phase(&mut report.phases, "mvcc undo pass", clock, || {
            let NvBackend {
                registry, tables, ..
            } = &mut nb;
            let rec = registry.recover(tables, last_cts)?;
            Ok::<u64, EngineError>(rec.repaired)
        })?;
        report.mvcc_words_repaired = repaired;
        report.last_cts = last_cts;
        report.rows_recovered = nb.tables.iter().map(|t| t.row_count()).sum();

        self.mgr = TxnManager::recovered(last_cts);
        self.backend = Backend::Nv(nb);
        Ok(())
    }

    /// Materialize a crash point armed on the NVM region (see
    /// [`nvm::NvmRegion::arm_crash`]) and recover from the surviving
    /// image. The whole recovery runs under the persist-trace linter:
    /// any byte it reads whose last store never reached the medium is a
    /// missing-flush bug, reported in the returned report's
    /// `lint_findings`. The trace is closed afterwards, restoring the
    /// default synchronous persistence semantics.
    pub fn restart_scheduled(&mut self) -> Result<RecoveryReport> {
        let region = match &self.backend {
            Backend::Nv(b) => b.region().clone(),
            _ => {
                return Err(EngineError::Catalog(
                    "scheduled crashes require the NVM backend".into(),
                ))
            }
        };
        let outcome = region.finalize_scheduled_crash().map_err(EngineError::Nvm)?;
        let mut report = RecoveryReport {
            mode: self.mode(),
            scheduled: Some(outcome),
            ..Default::default()
        };
        let recovered = self.recover_nv(region.clone(), &mut report);
        report.lint_findings = region.take_lint_findings();
        let _ = region.trace_stop();
        recovered?;
        Ok(report)
    }

    /// Post-recovery integrity check composing the crash-torture
    /// invariants: the heap walk (no block stuck mid-protocol), per-table
    /// MVCC cleanliness at the durable watermark, and index↔table
    /// agreement. Cheap enough to run after every scheduled crash; on the
    /// WAL and volatile backends only the MVCC check applies.
    pub fn verify_integrity(&self) -> Result<IntegrityReport> {
        let last_cts = self.mgr.last_committed();
        let mut rep = IntegrityReport {
            last_cts,
            ..Default::default()
        };
        match &self.backend {
            Backend::Nv(b) => {
                for blk in b.heap().walk().map_err(EngineError::Nvm)? {
                    rep.heap_blocks += 1;
                    match blk.state {
                        nvm::AllocState::Allocated | nvm::AllocState::Free => {}
                        _ => rep.heap_limbo_blocks += 1,
                    }
                }
                for t in &b.tables {
                    rep.mvcc
                        .absorb(&t.verify_mvcc(last_cts).map_err(EngineError::Storage)?);
                }
                for (t, set) in b.tables.iter().zip(&b.indexes) {
                    for idx in &set.hash {
                        rep.index
                            .absorb(&idx.verify_against(t).map_err(EngineError::Storage)?);
                    }
                    for idx in &set.ordered {
                        rep.index
                            .absorb(&idx.verify_against(t).map_err(EngineError::Storage)?);
                    }
                }
            }
            Backend::Wal(b) => {
                for t in &b.tables {
                    rep.mvcc
                        .absorb(&t.verify_mvcc(last_cts).map_err(EngineError::Storage)?);
                }
            }
            Backend::Volatile(b) => {
                for t in &b.tables {
                    rep.mvcc
                        .absorb(&t.verify_mvcc(last_cts).map_err(EngineError::Storage)?);
                }
            }
        }
        Ok(rep)
    }
}

/// Durable commit publish for the WAL backend: append a commit record; sync
/// when the group-commit window fills.
struct WalPublisher<'a> {
    writer: &'a mut LogWriter,
    commits_since_sync: &'a mut u32,
    every: u32,
}

impl txn::CommitPublish for WalPublisher<'_> {
    fn publish(&mut self, cts: u64, txn: &Transaction) -> txn::Result<()> {
        self.writer
            .append(&wal::LogRecord::Commit { tid: txn.tid, cts })
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        *self.commits_since_sync += 1;
        if *self.commits_since_sync >= self.every {
            self.writer
                .sync()
                .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
            *self.commits_since_sync = 0;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("mode", &self.mode())
            .field("tables", &self.table_count())
            .field("last_committed", &self.mgr.last_committed())
            .finish()
    }
}
