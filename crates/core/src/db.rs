//! The `Database` façade.

use index::{NvHashIndex, NvOrderedIndex};
use nvm::{CrashPoint, CrashPolicy, NvmHeap};
use storage::mvcc;
use storage::nv::MediaExtent;
use storage::{RowId, ScanResult, Schema, TableStore, Value};
use txn::{Transaction, TxnManager};
use wal::LogWriter;

use crate::backend_nv::{NvBackend, NvTableIndexes, KIND_HASH, KIND_ORDERED};
use crate::backend_vol::VolatileBackend;
use crate::backend_wal::WalBackend;
use crate::config::{DurabilityConfig, IndexKind, WalConfig};
use crate::error::{EngineError, Result};
use crate::health::{HealthReport, HealthState, HealthTracker, ReclaimReport, Watermarks};
use crate::report::{timed_phase, IntegrityReport, PersistStats, RecoveryReport};
use crate::shadow_wal::ShadowWal;

/// Handle to a table in the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub usize);

enum Backend {
    Nv(NvBackend),
    Wal(WalBackend),
    Volatile(VolatileBackend),
}

/// An embedded database instance over one durability backend.
///
/// The façade is single-threaded by design (one writer, as in the paper's
/// per-table delta append model); benchmark drivers issue transactions
/// back-to-back.
pub struct Database {
    backend: Backend,
    mgr: TxnManager,
    config: DurabilityConfig,
    health: HealthTracker,
}

impl Database {
    /// Create a fresh database with the given durability configuration and
    /// the default degradation watermarks.
    pub fn create(config: DurabilityConfig) -> Result<Database> {
        Self::create_with_watermarks(config, Watermarks::default())
    }

    /// Create a fresh database with explicit degradation watermarks (see
    /// [`Watermarks`] for the state machine they steer).
    pub fn create_with_watermarks(config: DurabilityConfig, marks: Watermarks) -> Result<Database> {
        let backend = match &config {
            DurabilityConfig::Nvm { capacity, latency } => {
                Backend::Nv(NvBackend::create(*capacity, *latency)?)
            }
            DurabilityConfig::NvmWithWal {
                capacity,
                latency,
                wal,
            } => {
                let mut b = NvBackend::create(*capacity, *latency)?;
                let mut sw = ShadowWal::create(wal.clone(), b.region().clone())?;
                sw.checkpoint_full(&b.names, &b.tables, 0)?;
                b.shadow = Some(sw);
                Backend::Nv(b)
            }
            DurabilityConfig::NvmFile {
                path,
                capacity,
                latency,
                wal,
            } => {
                // Format a fresh image on the file (truncating any previous
                // database there); use [`Database::open`] to attach one.
                let region = std::sync::Arc::new(
                    nvm::NvmRegion::open_file(path, *capacity, *latency)
                        .map_err(EngineError::Nvm)?,
                );
                let mut b = NvBackend::create_on_region(region)?;
                if let Some(wal_cfg) = wal {
                    let mut sw = ShadowWal::create(wal_cfg.clone(), b.region().clone())?;
                    sw.checkpoint_full(&b.names, &b.tables, 0)?;
                    b.shadow = Some(sw);
                }
                Backend::Nv(b)
            }
            DurabilityConfig::Wal(cfg) => Backend::Wal(WalBackend::create(cfg.clone())?),
            DurabilityConfig::Volatile => Backend::Volatile(VolatileBackend::create()),
        };
        Ok(Database {
            backend,
            mgr: TxnManager::new(),
            config,
            health: HealthTracker::new(marks),
        })
    }

    /// Open an existing database from its durable medium and run the
    /// recovery ladder — the real-restart entry point: where
    /// [`Database::restart`] simulates a crash on a live instance, `open`
    /// starts from nothing but the bytes a previous process left behind.
    /// Currently meaningful for [`DurabilityConfig::NvmFile`], whose image
    /// survives actual process death.
    pub fn open(config: DurabilityConfig) -> Result<(Database, RecoveryReport)> {
        let region = match &config {
            DurabilityConfig::NvmFile {
                path,
                capacity,
                latency,
                ..
            } => std::sync::Arc::new(
                nvm::NvmRegion::open_file(path, *capacity, *latency).map_err(EngineError::Nvm)?,
            ),
            _ => {
                return Err(EngineError::Catalog(
                    "Database::open requires a file-backed durability config \
                     (DurabilityConfig::NvmFile)"
                        .into(),
                ))
            }
        };
        Self::open_region(region, config)
    }

    /// Open a database over a caller-built region (file-backed or
    /// simulated) holding an existing image. The out-of-process torture
    /// harness uses this to pre-arm kill points on the region before
    /// recovery runs over it.
    pub fn open_region(
        region: std::sync::Arc<nvm::NvmRegion>,
        config: DurabilityConfig,
    ) -> Result<(Database, RecoveryReport)> {
        let mut report = RecoveryReport {
            mode: config.mode_name(),
            ..Default::default()
        };
        let mut db = Database {
            backend: Backend::Volatile(VolatileBackend::create()),
            mgr: TxnManager::new(),
            config,
            health: HealthTracker::new(Watermarks::default()),
        };
        db.recover_nv(region, &mut report)?;
        db.health.reset();
        report.health = db.refresh_health();
        report.utilization = match &db.backend {
            Backend::Nv(b) => b.heap().stats().utilization(),
            _ => 0.0,
        };
        Ok((db, report))
    }

    /// Gracefully shut down: flush the shadow log, durably set the
    /// clean-shutdown marker, and sync the whole mapping. The next
    /// [`Database::open`] of the image reports `clean_shutdown` and skips
    /// the mvcc undo pass. A no-op for non-NVM backends.
    pub fn shutdown(self) -> Result<()> {
        match self.backend {
            Backend::Nv(mut b) => {
                // Drop the shadow writer first: its buffered records reach
                // the log file on drop, keeping the log a superset of the
                // published NVM state even across the shutdown.
                b.shadow = None;
                b.mark_clean_shutdown()?;
                let region = b.region().clone();
                drop(b);
                region.sync_all().map_err(EngineError::Nvm)?;
                if let Some(e) = region.take_sync_error() {
                    return Err(EngineError::Nvm(e));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Health + admission control
    // ------------------------------------------------------------------

    /// `(high_water, capacity, free_bytes)` of the heap — zeroes off the
    /// NVM backend.
    fn heap_numbers(&self) -> (u64, u64, u64) {
        match &self.backend {
            Backend::Nv(b) => {
                let s = b.heap().stats();
                (s.high_water, s.capacity, s.free_bytes)
            }
            _ => (0, 0, 0),
        }
    }

    /// Feed the state machine a fresh heap observation (utilization plus
    /// shadow-log wedge state) and return the resulting state.
    fn refresh_health(&mut self) -> HealthState {
        let (wedged, utilization) = match &self.backend {
            Backend::Nv(b) => (
                b.shadow.as_ref().is_some_and(|sw| sw.is_wedged()),
                b.heap().stats().utilization(),
            ),
            _ => (false, 0.0),
        };
        self.health.set_wal_wedged(wedged);
        self.health.observe(utilization)
    }

    fn admit_write(&mut self) -> Result<()> {
        self.refresh_health();
        self.health.admit_write()
    }

    fn admit_ddl(&mut self) -> Result<()> {
        self.refresh_health();
        self.health.admit_ddl()
    }

    /// Error-path epilogue for every mutating operation: normalize
    /// out-of-space failures into the typed capacity error, sweep the
    /// reservations the failed protocol orphaned (restoring the
    /// four-invariant clean heap), and re-derive the health state.
    fn after_write<T>(&mut self, res: Result<T>) -> Result<T> {
        res.map_err(|e| {
            let e = e.normalize_capacity();
            if e.is_capacity() {
                self.health.note_capacity_abort();
                if let Backend::Nv(b) = &self.backend {
                    let _ = b.heap().reclaim_reserved();
                }
                self.refresh_health();
            }
            e
        })
    }

    /// Current degradation snapshot. Refreshes the state machine from the
    /// heap first, so the report never lags the allocator.
    pub fn health(&mut self) -> HealthReport {
        self.refresh_health();
        let (high_water, capacity, free_bytes) = self.heap_numbers();
        self.health.report(high_water, capacity, free_bytes)
    }

    /// Emergency reclamation: recreate a wedged shadow log (and re-baseline
    /// its checkpoint), merge every table to retire dead versions, and
    /// sweep orphaned reservations. Requires quiesced tables — abort any
    /// in-flight transaction first. Allowed in every health state; this is
    /// the path *out* of `ReadOnly`.
    pub fn reclaim(&mut self) -> Result<ReclaimReport> {
        let mut rep = ReclaimReport {
            utilization_before: match &self.backend {
                Backend::Nv(b) => b.heap().stats().utilization(),
                _ => 0.0,
            },
            ..Default::default()
        };
        if let Backend::Nv(b) = &mut self.backend {
            // A wedged log blocks merges (they append merge records), so it
            // is recreated first. The fresh log starts empty; the immediate
            // full-state checkpoint restores the `log ⊇ published state`
            // invariant rung 2 depends on.
            if b.shadow.as_ref().is_some_and(|sw| sw.is_wedged()) {
                let cfg = b.shadow.as_ref().map(|sw| sw.cfg.clone());
                if let Some(cfg) = cfg {
                    let mut sw = ShadowWal::create(cfg, b.region().clone())?;
                    sw.checkpoint_full(&b.names, &b.tables, self.mgr.last_committed())?;
                    b.shadow = Some(sw);
                    rep.wal_recreated = true;
                }
            }
            let snapshot = self.mgr.last_committed();
            for t in 0..b.tables.len() {
                match b.merge_table(t, snapshot) {
                    Ok(_) => rep.tables_merged += 1,
                    Err(e) => {
                        // A merge needs headroom for the new main; at the
                        // brim it can itself exhaust capacity. Skip the
                        // table (its old image is untouched) and keep
                        // reclaiming elsewhere.
                        let e = e.normalize_capacity();
                        if e.is_capacity() {
                            rep.merges_failed += 1;
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
            let (blocks, bytes) = b.heap().reclaim_reserved()?;
            rep.reserved_blocks_freed = blocks;
            rep.reserved_bytes_freed = bytes;
        }
        self.health.note_reclaim();
        rep.state_after = self.refresh_health();
        rep.utilization_after = match &self.backend {
            Backend::Nv(b) => b.heap().stats().utilization(),
            _ => 0.0,
        };
        Ok(rep)
    }

    // ------------------------------------------------------------------
    // Exhaustion-fault instrumentation
    // ------------------------------------------------------------------

    /// Arm an out-of-space fault on the shadow log (NVM-with-WAL backend
    /// only).
    pub fn arm_wal_fault(&mut self, spec: wal::WalFaultSpec) -> Result<()> {
        match &mut self.backend {
            Backend::Nv(b) => match &mut b.shadow {
                Some(sw) => {
                    sw.arm_fault(spec);
                    Ok(())
                }
                None => Err(EngineError::Unsupported(
                    "wal fault injection requires a shadow wal",
                )),
            },
            _ => Err(EngineError::Unsupported(
                "wal fault injection requires the NVM backend",
            )),
        }
    }

    /// True while the shadow-WAL writer is wedged by an out-of-space
    /// failure (forces read-only mode until [`Database::reclaim`]).
    pub fn wal_wedged(&self) -> bool {
        match &self.backend {
            Backend::Nv(b) => b.shadow.as_ref().is_some_and(|sw| sw.is_wedged()),
            _ => false,
        }
    }

    /// Arm an allocation fault on the NVM region (deterministic nth-attempt
    /// or probabilistic).
    pub fn arm_alloc_fault(&self, spec: nvm::AllocFaultSpec) -> Result<()> {
        match &self.backend {
            Backend::Nv(b) => {
                b.region().arm_alloc_fault(&spec);
                Ok(())
            }
            _ => Err(EngineError::Unsupported(
                "allocation faults require the NVM backend",
            )),
        }
    }

    /// Clamp the heap's effective capacity to model a smaller device
    /// (`None` lifts the clamp).
    pub fn set_capacity_clamp(&self, clamp: Option<u64>) -> Result<()> {
        match &self.backend {
            Backend::Nv(b) => {
                b.region().set_capacity_clamp(clamp);
                Ok(())
            }
            _ => Err(EngineError::Unsupported(
                "capacity clamps require the NVM backend",
            )),
        }
    }

    /// Allocation attempts the region has observed — the sweep space of the
    /// nth-allocation fault harness. Zero off the NVM backend.
    pub fn alloc_attempts(&self) -> u64 {
        match &self.backend {
            Backend::Nv(b) => b.region().alloc_attempts(),
            _ => 0,
        }
    }

    /// Volatile heap statistics (NVM backend only).
    pub fn heap_stats(&self) -> Option<nvm::HeapStats> {
        match &self.backend {
            Backend::Nv(b) => Some(b.heap().stats()),
            _ => None,
        }
    }

    /// The active durability mode ("nvm" / "wal" / "volatile").
    pub fn mode(&self) -> &'static str {
        self.config.mode_name()
    }

    /// Simulated nanoseconds charged so far (NVM flush/fence or WAL sync).
    pub fn simulated_ns(&self) -> u64 {
        match &self.backend {
            Backend::Nv(b) => b.region().clock().now_ns(),
            Backend::Wal(b) => b.clock().now_ns(),
            Backend::Volatile(_) => 0,
        }
    }

    /// NVM primitive counters (zeroes for other backends).
    pub fn nvm_stats(&self) -> nvm::StatsSnapshot {
        match &self.backend {
            Backend::Nv(b) => b.region().stats(),
            _ => nvm::StatsSnapshot::default(),
        }
    }

    /// WAL activity counters: the baseline's log on the WAL backend, the
    /// shadow log on the NVM backend when one is configured, zeroes
    /// otherwise.
    pub fn wal_stats(&self) -> wal::WalStats {
        match &self.backend {
            Backend::Wal(b) => b.wal_stats(),
            Backend::Nv(b) => b.shadow.as_ref().map(|sw| sw.stats()).unwrap_or_default(),
            Backend::Volatile(_) => wal::WalStats::default(),
        }
    }

    /// The NVM backend, if active (advanced instrumentation).
    pub fn nv_backend(&self) -> Option<&NvBackend> {
        match &self.backend {
            Backend::Nv(b) => Some(b),
            _ => None,
        }
    }

    /// The transaction manager's committed-state watermark.
    pub fn last_committed(&self) -> u64 {
        self.mgr.last_committed()
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table. Rejected while the engine is read-only.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        self.admit_ddl()?;
        let res = match &mut self.backend {
            Backend::Nv(b) => b.create_table(name, schema),
            Backend::Wal(b) => {
                let cts = self.mgr.last_committed();
                b.create_table(name, schema, cts)
            }
            Backend::Volatile(b) => b.create_table(name, schema),
        };
        self.after_write(res).map(TableId)
    }

    /// Look up a table by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        let names = match &self.backend {
            Backend::Nv(b) => &b.names,
            Backend::Wal(b) => &b.names,
            Backend::Volatile(b) => &b.names,
        };
        names.iter().position(|n| n == name).map(TableId)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        match &self.backend {
            Backend::Nv(b) => b.tables.len(),
            Backend::Wal(b) => b.tables.len(),
            Backend::Volatile(b) => b.tables.len(),
        }
    }

    /// Create an index over `(table, column)`. Rejected while the engine
    /// is read-only.
    pub fn create_index(&mut self, table: TableId, column: usize, kind: IndexKind) -> Result<()> {
        self.check_table(table)?;
        self.admit_ddl()?;
        let res = match &mut self.backend {
            Backend::Nv(b) => match kind {
                IndexKind::Hash => b.create_hash_index(table.0, column),
                IndexKind::Ordered => b.create_ordered_index(table.0, column),
            },
            Backend::Wal(b) => b.create_index(table.0, column, kind),
            Backend::Volatile(b) => b.create_index(table.0, column, kind),
        };
        self.after_write(res)
    }

    fn check_table(&self, table: TableId) -> Result<()> {
        if table.0 < self.table_count() {
            Ok(())
        } else {
            Err(EngineError::Catalog(format!(
                "unknown table id {}",
                table.0
            )))
        }
    }

    /// Crate-internal access to a table's store (query operators).
    pub(crate) fn table_store(&self, table: TableId) -> Result<&dyn TableStore> {
        self.table(table)
    }

    fn table(&self, table: TableId) -> Result<&dyn TableStore> {
        self.check_table(table)?;
        Ok(match &self.backend {
            Backend::Nv(b) => &b.tables[table.0],
            Backend::Wal(b) => &b.tables[table.0],
            Backend::Volatile(b) => &b.tables[table.0],
        })
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction with a snapshot of the current committed state.
    pub fn begin(&mut self) -> Transaction {
        self.mgr.begin()
    }

    /// Insert a row. Rejected with a retryable typed error while the
    /// engine is degraded (see [`Database::health`]); an allocation failure
    /// mid-insert unwinds to a clean abort before the typed
    /// [`EngineError::CapacityExhausted`] surfaces.
    pub fn insert(
        &mut self,
        tx: &mut Transaction,
        table: TableId,
        values: &[Value],
    ) -> Result<RowId> {
        self.check_table(table)?;
        self.admit_write()?;
        let res = self.insert_unguarded(tx, table, values);
        self.after_write(res)
    }

    fn insert_unguarded(
        &mut self,
        tx: &mut Transaction,
        table: TableId,
        values: &[Value],
    ) -> Result<RowId> {
        let t = table.0;
        let marker = tx.marker();
        let row = match &mut self.backend {
            Backend::Nv(b) => {
                // Write-ahead registry entry: the row id an insert will get
                // is deterministic (next physical slot), so recovery can be
                // told about it before the row materializes.
                let row = b.tables[t].row_count();
                b.registry.record_insert(tx.tid, t, row)?;
                let got = b.tables[t].insert_version(values, marker)?;
                debug_assert_eq!(got, row);
                // The version exists but the transaction has not recorded
                // it yet: a failure in the index or log step must tombstone
                // it here, or nothing ever would.
                let tail = b.index_insert(t, values, got).and_then(|()| {
                    if let Some(sw) = &mut b.shadow {
                        sw.log_insert(tx.tid, t, got, values)?;
                    }
                    Ok(())
                });
                if let Err(e) = tail {
                    let _ = b.tables[t].abort_insert(got);
                    return Err(e);
                }
                got
            }
            Backend::Wal(b) => {
                let row = b.tables[t].insert_version(values, marker)?;
                b.log_insert(tx.tid, t, row, values)?;
                b.index_insert(t, values, row);
                row
            }
            Backend::Volatile(b) => {
                let row = b.tables[t].insert_version(values, marker)?;
                b.index_insert(t, values, row);
                row
            }
        };
        tx.record_insert(t, row);
        Ok(row)
    }

    /// Delete (invalidate) a visible row version. Fails with a write
    /// conflict if another transaction holds the row, and with a retryable
    /// typed error while the engine is degraded.
    pub fn delete(&mut self, tx: &mut Transaction, table: TableId, row: RowId) -> Result<()> {
        self.check_table(table)?;
        self.admit_write()?;
        let res = self.delete_unguarded(tx, table, row);
        self.after_write(res)
    }

    fn delete_unguarded(&mut self, tx: &mut Transaction, table: TableId, row: RowId) -> Result<()> {
        let t = table.0;
        let marker = tx.marker();
        match &mut self.backend {
            Backend::Nv(b) => {
                b.registry.record_invalidate(tx.tid, t, row)?;
                b.tables[t].try_invalidate(row, marker)?;
                if let Some(sw) = &mut b.shadow {
                    // The end marker is already placed but the transaction
                    // has not recorded it: restore it on a failed append.
                    if let Err(e) = sw.log_invalidate(tx.tid, t, row) {
                        let _ = b.tables[t].restore_end(row);
                        return Err(e);
                    }
                }
            }
            Backend::Wal(b) => {
                b.tables[t].try_invalidate(row, marker)?;
                b.log_invalidate(tx.tid, t, row)?;
            }
            Backend::Volatile(b) => b.tables[t].try_invalidate(row, marker)?,
        }
        tx.record_invalidate(t, row);
        Ok(())
    }

    /// Update a visible row version: invalidate + insert the new values.
    /// Returns the new version's row id.
    pub fn update(
        &mut self,
        tx: &mut Transaction,
        table: TableId,
        row: RowId,
        new_values: &[Value],
    ) -> Result<RowId> {
        self.delete(tx, table, row)?;
        self.insert(tx, table, new_values)
    }

    /// Commit: stamp every write with the next commit timestamp, durably
    /// publish it, advance the committed state.
    ///
    /// Commits are admitted in every health state — an in-flight
    /// transaction may always try to finish. A publish that hits the
    /// capacity wall surfaces as the typed
    /// [`EngineError::CapacityExhausted`] and leaves the transaction
    /// active: [`Database::abort`] then rolls the stamped markers back to a
    /// clean image.
    pub fn commit(&mut self, tx: &mut Transaction) -> Result<u64> {
        let res = self.commit_unguarded(tx);
        self.after_write(res)
    }

    fn commit_unguarded(&mut self, tx: &mut Transaction) -> Result<u64> {
        match &mut self.backend {
            Backend::Nv(b) => b.commit_txn(&mut self.mgr, tx),
            Backend::Wal(b) => {
                let WalBackend {
                    tables,
                    writer,
                    commits_since_sync,
                    cfg,
                    ..
                } = b;
                let mut publisher = WalPublisher {
                    writer,
                    commits_since_sync,
                    every: cfg.sync_every_n_commits.max(1),
                };
                let mut refs: Vec<&mut dyn TableStore> = tables
                    .iter_mut()
                    .map(|t| t as &mut dyn TableStore)
                    .collect();
                Ok(self.mgr.commit(tx, &mut refs, &mut publisher)?)
            }
            Backend::Volatile(b) => {
                let mut refs: Vec<&mut dyn TableStore> = b
                    .tables
                    .iter_mut()
                    .map(|t| t as &mut dyn TableStore)
                    .collect();
                Ok(self.mgr.commit(tx, &mut refs, &mut txn::NoopPublish)?)
            }
        }
    }

    /// Abort: roll back every pending marker. Also the unwind path after a
    /// failed commit publish — the stamps `commit` already applied are
    /// rolled back the same way as pending markers. Succeeds even while
    /// the shadow log is wedged: an absent abort record replays exactly
    /// like a missing commit, so nothing is lost by skipping the append.
    pub fn abort(&mut self, tx: &mut Transaction) -> Result<()> {
        match &mut self.backend {
            Backend::Nv(b) => {
                {
                    let mut refs: Vec<&mut dyn TableStore> = b
                        .tables
                        .iter_mut()
                        .map(|t| t as &mut dyn TableStore)
                        .collect();
                    self.mgr.abort(tx, &mut refs)?;
                }
                b.registry.release(tx.tid)?;
                if let Some(sw) = &mut b.shadow {
                    match sw.log_abort(tx.tid) {
                        Err(EngineError::Wal(e)) if e.is_full() => {}
                        other => other?,
                    }
                }
            }
            Backend::Wal(b) => {
                {
                    let mut refs: Vec<&mut dyn TableStore> = b
                        .tables
                        .iter_mut()
                        .map(|t| t as &mut dyn TableStore)
                        .collect();
                    self.mgr.abort(tx, &mut refs)?;
                }
                b.log_abort(tx.tid)?;
            }
            Backend::Volatile(b) => {
                let mut refs: Vec<&mut dyn TableStore> = b
                    .tables
                    .iter_mut()
                    .map(|t| t as &mut dyn TableStore)
                    .collect();
                self.mgr.abort(tx, &mut refs)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    fn materialize(&self, table: TableId, rows: Vec<RowId>) -> Result<Vec<ScanResult>> {
        let t = self.table(table)?;
        rows.into_iter()
            .map(|row| {
                Ok(ScanResult {
                    row,
                    values: t.row_values(row)?,
                })
            })
            .collect()
    }

    /// All rows visible to `tx`.
    // pmlint: read-path
    pub fn scan_all(&self, tx: &Transaction, table: TableId) -> Result<Vec<ScanResult>> {
        let rows = self.table(table)?.scan_visible(tx.snapshot, tx.tid)?;
        self.materialize(table, rows)
    }

    /// Visible rows with `column == value` (full column scan through the
    /// dictionary; use [`Database::index_lookup`] when an index exists).
    // pmlint: read-path
    pub fn scan_eq(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        value: &Value,
    ) -> Result<Vec<ScanResult>> {
        let rows = self
            .table(table)?
            .scan_eq(column, value, tx.snapshot, tx.tid)?;
        self.materialize(table, rows)
    }

    /// Visible rows with `lo <= column < hi`.
    // pmlint: read-path
    pub fn scan_range(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<ScanResult>> {
        let rows = self
            .table(table)?
            .scan_range(column, lo, hi, tx.snapshot, tx.tid)?;
        self.materialize(table, rows)
    }

    /// Point lookup through an index on `(table, column)`; falls back to a
    /// dictionary scan when no index exists. Results are verified against
    /// the base table and MVCC-filtered.
    // pmlint: read-path
    pub fn index_lookup(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        value: &Value,
    ) -> Result<Vec<ScanResult>> {
        self.check_table(table)?;
        let t = table.0;
        let candidates: Option<Vec<RowId>> = match &self.backend {
            Backend::Nv(b) => {
                if let Some(idx) = b.indexes[t].hash.iter().find(|i| i.column() == column) {
                    Some(idx.lookup(value)?)
                } else if let Some(idx) = b.indexes[t].ordered.iter().find(|i| i.column() == column)
                {
                    Some(idx.lookup(value)?)
                } else {
                    None
                }
            }
            Backend::Wal(b) => {
                if let Some(idx) = b.indexes[t].hash.iter().find(|i| i.column() == column) {
                    Some(idx.lookup(value).to_vec())
                } else {
                    b.indexes[t]
                        .ordered
                        .iter()
                        .find(|i| i.column() == column)
                        .map(|idx| idx.lookup(value).to_vec())
                }
            }
            Backend::Volatile(b) => {
                if let Some(idx) = b.indexes[t].hash.iter().find(|i| i.column() == column) {
                    Some(idx.lookup(value).to_vec())
                } else {
                    b.indexes[t]
                        .ordered
                        .iter()
                        .find(|i| i.column() == column)
                        .map(|idx| idx.lookup(value).to_vec())
                }
            }
        };
        let Some(candidates) = candidates else {
            return self.scan_eq(tx, table, column, value);
        };
        let store = self.table(table)?;
        let mut out = Vec::new();
        for row in candidates {
            // Hash candidates may collide; verify the key, then visibility.
            if store.value(row, column)? != *value {
                continue;
            }
            let b = store.begin_ts(row)?;
            let e = store.end_ts(row)?;
            if mvcc::visible(b, e, tx.snapshot, tx.tid) {
                out.push(ScanResult {
                    row,
                    values: store.row_values(row)?,
                });
            }
        }
        Ok(out)
    }

    /// Range lookup through an ordered index; falls back to a scan.
    // pmlint: read-path
    pub fn index_range_lookup(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<ScanResult>> {
        self.check_table(table)?;
        let t = table.0;
        let candidates: Option<Vec<RowId>> = match &self.backend {
            Backend::Nv(b) => match b.indexes[t].ordered.iter().find(|i| i.column() == column) {
                Some(idx) => Some(idx.lookup_range(lo, hi)?),
                None => None,
            },
            Backend::Wal(b) => b.indexes[t]
                .ordered
                .iter()
                .find(|i| i.column() == column)
                .map(|idx| idx.lookup_range(lo, hi)),
            Backend::Volatile(b) => b.indexes[t]
                .ordered
                .iter()
                .find(|i| i.column() == column)
                .map(|idx| idx.lookup_range(lo, hi)),
        };
        let Some(candidates) = candidates else {
            return self.scan_range(tx, table, column, lo, hi);
        };
        let store = self.table(table)?;
        let mut out = Vec::new();
        for row in candidates {
            let b = store.begin_ts(row)?;
            let e = store.end_ts(row)?;
            if mvcc::visible(b, e, tx.snapshot, tx.tid) {
                out.push(ScanResult {
                    row,
                    values: store.row_values(row)?,
                });
            }
        }
        Ok(out)
    }

    /// Total physical rows (all versions) in a table.
    // pmlint: read-path
    pub fn row_count(&self, table: TableId) -> Result<u64> {
        Ok(self.table(table)?.row_count())
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Merge a table's delta into its main. Requires a quiesced table (no
    /// in-flight transactions touching it).
    pub fn merge(&mut self, table: TableId) -> Result<storage::MergeStats> {
        self.check_table(table)?;
        let snapshot = self.mgr.last_committed();
        let res = match &mut self.backend {
            Backend::Nv(b) => b.merge_table(table.0, snapshot),
            Backend::Wal(b) => b.merge_table(table.0, snapshot),
            Backend::Volatile(b) => b.merge_table(table.0, snapshot),
        };
        // Merges are admitted in every health state — they are the cure,
        // not the disease — but can themselves exhaust capacity.
        self.after_write(res)
    }

    /// Write a checkpoint (WAL backend only; no-ops elsewhere — NVM *is*
    /// its own checkpoint). Returns bytes written.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let cts = self.mgr.last_committed();
        match &mut self.backend {
            Backend::Wal(b) => b.checkpoint(cts),
            _ => Ok(0),
        }
    }

    // ------------------------------------------------------------------
    // Crash + restart
    // ------------------------------------------------------------------

    /// Simulate a power failure with all unflushed cache lines lost, then
    /// restart and recover. Returns the phase-timed report.
    pub fn restart_after_crash(&mut self) -> Result<RecoveryReport> {
        self.restart(CrashPolicy::DropUnflushed)
    }

    /// Simulate a power failure with the given crash policy, then restart.
    pub fn restart(&mut self, policy: CrashPolicy) -> Result<RecoveryReport> {
        let mut report = RecoveryReport {
            mode: self.mode(),
            ..Default::default()
        };
        match &mut self.backend {
            Backend::Nv(b) => {
                // Drop the shadow writer first: its buffered records reach
                // the log file on drop, and the file — unlike NVM cache
                // lines — survives the simulated power loss.
                b.shadow = None;
                let region = b.region().clone();
                region.crash(policy);
                self.recover_nv(region, &mut report)?;
            }
            Backend::Wal(b) => {
                // Power failure: the in-memory tables and any unsynced log
                // buffer are gone. Dropping the writer without a final sync
                // models the lost buffer.
                let cfg = b.cfg.clone();
                let paths = b.paths.clone();
                let clock_arc = b.clock().clone();
                let index_specs = b.index_specs.clone();
                // File-backed recovery generates no NVM persist traffic.
                let clock = || (clock_arc.now_ns(), PersistStats::default());

                // Phase 1: load the newest checkpoint.
                let ckpt = timed_phase(&mut report.phases, "checkpoint load", clock, || {
                    if paths.checkpoint().exists() {
                        wal::load_checkpoint(&paths.checkpoint())
                            .map(Some)
                            .map_err(EngineError::Wal)
                    } else {
                        Ok(None)
                    }
                })?;
                let (mut tables, names, mut last_cts, covered) = match ckpt {
                    Some((meta, tables)) => (
                        tables,
                        meta.table_names,
                        meta.last_cts,
                        meta.covered_log_pos,
                    ),
                    None => (Vec::new(), Vec::new(), 0, 0),
                };

                // Phase 2: replay the log suffix.
                let replay = timed_phase(&mut report.phases, "log replay", clock, || {
                    if paths.log().exists() {
                        wal::replay_log(&paths.log(), covered, &mut tables)
                            .map_err(EngineError::Wal)
                    } else {
                        Ok(wal::ReplayReport::default())
                    }
                })?;
                last_cts = last_cts.max(replay.last_cts);
                report.log_records_replayed = replay.records;

                // Phase 3: rebuild the DRAM indexes.
                let mut nb = WalBackend {
                    writer: LogWriter::open(&paths.log(), clock_arc.clone(), cfg.sync_latency_ns)
                        .map_err(EngineError::Wal)?,
                    cfg,
                    paths,
                    clock: clock_arc.clone(),
                    tables,
                    names,
                    indexes: Vec::new(),
                    index_specs: Vec::new(),
                    commits_since_sync: 0,
                };
                for _ in 0..nb.tables.len() {
                    nb.indexes.push(crate::backend_wal::WalTableIndexes {
                        hash: Vec::new(),
                        ordered: Vec::new(),
                    });
                }
                timed_phase(&mut report.phases, "index rebuild", clock, || {
                    for (t, c, k) in &index_specs {
                        nb.create_index(*t, *c, *k)?;
                    }
                    Ok::<(), EngineError>(())
                })?;
                // create_index re-populated index_specs.
                report.indexes_rebuilt = (nb
                    .indexes
                    .iter()
                    .map(|s| s.hash.len() + s.ordered.len())
                    .sum::<usize>()) as u64;
                report.last_cts = last_cts;
                report.rows_recovered = nb.tables.iter().map(|t| t.row_count()).sum();

                self.mgr = TxnManager::recovered(last_cts);
                self.backend = Backend::Wal(nb);
            }
            Backend::Volatile(_) => {
                // Everything is lost; the report records the data loss.
                timed_phase(
                    &mut report.phases,
                    "data loss",
                    || (0, PersistStats::default()),
                    || Ok::<(), EngineError>(()),
                )?;
                self.mgr = TxnManager::new();
                self.backend = Backend::Volatile(VolatileBackend::create());
            }
        }
        // The health machine is volatile: re-derive it from the recovered
        // heap exactly as a fresh process would.
        self.health.reset();
        report.health = self.refresh_health();
        report.utilization = match &self.backend {
            Backend::Nv(b) => b.heap().stats().utilization(),
            _ => 0.0,
        };
        Ok(report)
    }

    /// The shared NVM recovery path: map the region, re-attach the
    /// catalogue, run the registry undo pass. The crash itself (policy or
    /// scheduled) must already have been materialized on `region`.
    ///
    /// On the plain NVM backend this is the fast rung-0 restart: remap and
    /// re-attach in O(metadata), no data is touched, any failure is fatal.
    /// When a shadow WAL is configured ([`DurabilityConfig::NvmWithWal`]),
    /// the full recovery ladder runs instead (see [`attach_with_ladder`]).
    fn recover_nv(
        &mut self,
        region: std::sync::Arc<nvm::NvmRegion>,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        let clock = nv_probe(&region);
        let shadow_cfg = match &self.config {
            DurabilityConfig::NvmWithWal { wal, .. } => Some(wal.clone()),
            DurabilityConfig::NvmFile { wal, .. } => wal.clone(),
            _ => None,
        };
        let mut retries = 0u64;

        // Phase 1: map the region + allocator recovery scan.
        let (heap, alloc_report) = timed_phase(
            &mut report.phases,
            "heap map + allocator scan",
            clock,
            || {
                retry_poisoned(&mut retries, || {
                    nvm::NvmHeap::open(region.clone()).map_err(EngineError::Nvm)
                })
            },
        )?;
        report.heap_blocks_scanned = alloc_report.blocks_scanned;

        // Graceful-shutdown marker: read and durably clear it first, so it
        // can never leak into this run and vouch for a later hard crash.
        report.clean_shutdown = retry_poisoned(&mut retries, || {
            crate::backend_nv::take_clean_shutdown(&heap)
        })?;

        // Attempt accounting: durably bump the progress word before any
        // other recovery mutation. `attempt > 1` means this recovery is
        // itself re-entrant — an earlier attempt was cut short by a
        // nested crash (or a recoverable failure) before it could zero
        // the word.
        report.attempt = retry_poisoned(&mut retries, || {
            crate::backend_nv::begin_recovery_attempt(&heap)
        })?;

        // Phase 2: catalogue + tables + indexes — fast path or ladder.
        let mut nb = match &shadow_cfg {
            None => {
                let nb = timed_phase(
                    &mut report.phases,
                    "catalogue + transient rebuild",
                    clock,
                    || NvBackend::attach(heap),
                )?;
                let (attached, rebuilt) = nb.index_counts();
                report.indexes_attached = attached;
                report.indexes_rebuilt = rebuilt;
                nb
            }
            Some(cfg) => attach_with_ladder(heap, cfg, report, &mut retries, clock)?,
        };

        // Phase 3: registry-driven undo pass — repairs exactly the rows of
        // transactions in flight at the crash, O(in-flight writes), never
        // O(rows). Idempotent over rung-2 rebuilt tables: replay already
        // materialized their uncommitted rows as aborted tombstones.
        let last_cts = nb.last_cts()?;
        let repaired = if report.clean_shutdown {
            // A graceful shutdown leaves no transaction in flight: the undo
            // pass would scan an empty registry. Skipping it (no "mvcc undo
            // pass" phase in the report) is the clean-restart fast path the
            // SIGTERM half of the torture harness asserts on.
            0
        } else {
            timed_phase(&mut report.phases, "mvcc undo pass", clock, || {
                let NvBackend {
                    registry, tables, ..
                } = &mut nb;
                let rec = registry.recover(tables, last_cts)?;
                Ok::<u64, EngineError>(rec.repaired)
            })?
        };
        report.mvcc_words_repaired = repaired;
        report.last_cts = last_cts;
        report.rows_recovered = nb.tables.iter().map(|t| t.row_count()).sum();

        // Re-attach the shadow log and re-baseline its checkpoint from the
        // recovered state. The re-baseline is what keeps *future* rung-2
        // replays row-id-aligned: the old log can hold insert records for
        // rows that never became durable on NVM, and new row ids handed out
        // after this restart would collide with that stale suffix.
        if let Some(cfg) = shadow_cfg {
            let mut sw = ShadowWal::reopen(cfg, region.clone())?;
            timed_phase(&mut report.phases, "shadow re-baseline", clock, || {
                sw.checkpoint_full(&nb.names, &nb.tables, last_cts)
            })?;
            nb.shadow = Some(sw);
        }

        // Close the attempt: the progress word returns to 0 only once the
        // ladder, undo pass, and shadow re-baseline have all completed —
        // a nested crash anywhere above leaves it non-zero, and the next
        // attempt reports itself as re-entrant.
        retry_poisoned(&mut retries, || nb.finish_recovery_attempt())?;
        report.poison_retries = retries;
        if retries > 0 {
            report.rung = report.rung.max(1);
        }

        self.mgr = TxnManager::recovered(last_cts);
        self.backend = Backend::Nv(nb);
        Ok(())
    }

    /// Materialize a crash point armed on the NVM region (see
    /// [`nvm::NvmRegion::arm_crash`]) and recover from the surviving
    /// image. The whole recovery runs under the persist-trace linter:
    /// any byte it reads whose last store never reached the medium is a
    /// missing-flush bug, reported in the returned report's
    /// `lint_findings`. The trace is closed afterwards, restoring the
    /// default synchronous persistence semantics.
    pub fn restart_scheduled(&mut self) -> Result<RecoveryReport> {
        let region = match &mut self.backend {
            Backend::Nv(b) => {
                let region = b.region().clone();
                // Flush the shadow writer's buffer into the log file before
                // materializing the crash (the file survives power loss).
                b.shadow = None;
                region
            }
            _ => {
                return Err(EngineError::Catalog(
                    "scheduled crashes require the NVM backend".into(),
                ))
            }
        };
        let outcome = region
            .finalize_scheduled_crash()
            .map_err(EngineError::Nvm)?;
        let mut report = RecoveryReport {
            mode: self.mode(),
            scheduled: Some(outcome),
            ..Default::default()
        };
        let recovered = self.recover_nv(region.clone(), &mut report);
        report.lint_findings = region.take_lint_findings();
        let _ = region.trace_stop();
        recovered?;
        self.health.reset();
        report.health = self.refresh_health();
        report.utilization = match &self.backend {
            Backend::Nv(b) => b.heap().stats().utilization(),
            _ => 0.0,
        };
        Ok(report)
    }

    /// Like [`Database::restart_scheduled`], but keeps the persist trace
    /// armed *across* the recovery: the pending crash is materialized,
    /// the recorder is re-armed with `next` — a crash point inside the
    /// upcoming recovery, its fence numbers relative to the recovery's
    /// own persistence stream — and recovery runs. The trace stays
    /// active afterwards, so nested-crash chains compose: each call
    /// models one power-cycle, the next call materializes `next`
    /// (crash-at-end of recovery if it never tripped), and a final
    /// [`Database::restart_scheduled`] terminates the chain, linting the
    /// last recovery and closing the trace.
    ///
    /// Pass `None` to record the recovery without scheduling a trip
    /// (useful as a reference run: `region.trace_fences()` afterwards is
    /// the recovery's own fence count, the sampling domain for nested
    /// points).
    ///
    /// If the recovery attempt fails (e.g. a composed allocation fault),
    /// the error is returned with the trace still active and the stale
    /// backend still in place — calling the method again models the next
    /// power-cycle retrying recovery.
    pub fn restart_scheduled_traced(&mut self, next: Option<CrashPoint>) -> Result<RecoveryReport> {
        let region = match &mut self.backend {
            Backend::Nv(b) => {
                let region = b.region().clone();
                // Flush the shadow writer's buffer into the log file before
                // materializing the crash (the file survives power loss).
                b.shadow = None;
                region
            }
            _ => {
                return Err(EngineError::Catalog(
                    "scheduled crashes require the NVM backend".into(),
                ))
            }
        };
        let outcome = region
            .finalize_scheduled_crash()
            .map_err(EngineError::Nvm)?;
        region
            .rearm_recovery_crash(next)
            .map_err(EngineError::Nvm)?;
        let mut report = RecoveryReport {
            mode: self.mode(),
            scheduled: Some(outcome),
            ..Default::default()
        };
        self.recover_nv(region.clone(), &mut report)?;
        report.lint_findings = region.take_lint_findings();
        self.health.reset();
        report.health = self.refresh_health();
        report.utilization = match &self.backend {
            Backend::Nv(b) => b.heap().stats().utilization(),
            _ => 0.0,
        };
        Ok(report)
    }

    /// Post-recovery integrity check composing the crash-torture
    /// invariants: the heap walk (no block stuck mid-protocol), per-table
    /// MVCC cleanliness at the durable watermark, and index↔table
    /// agreement. Cheap enough to run after every scheduled crash; on the
    /// WAL and volatile backends only the MVCC check applies.
    pub fn verify_integrity(&self) -> Result<IntegrityReport> {
        let last_cts = self.mgr.last_committed();
        let mut rep = IntegrityReport {
            last_cts,
            ..Default::default()
        };
        match &self.backend {
            Backend::Nv(b) => {
                for blk in b.heap().walk().map_err(EngineError::Nvm)? {
                    rep.heap_blocks += 1;
                    match blk.state {
                        nvm::AllocState::Allocated | nvm::AllocState::Free => {}
                        _ => rep.heap_limbo_blocks += 1,
                    }
                }
                for t in &b.tables {
                    rep.mvcc
                        .absorb(&t.verify_mvcc(last_cts).map_err(EngineError::Storage)?);
                }
                for (t, set) in b.tables.iter().zip(&b.indexes) {
                    for idx in &set.hash {
                        rep.index
                            .absorb(&idx.verify_against(t).map_err(EngineError::Storage)?);
                    }
                    for idx in &set.ordered {
                        rep.index
                            .absorb(&idx.verify_against(t).map_err(EngineError::Storage)?);
                    }
                }
            }
            Backend::Wal(b) => {
                for t in &b.tables {
                    rep.mvcc
                        .absorb(&t.verify_mvcc(last_cts).map_err(EngineError::Storage)?);
                }
            }
            Backend::Volatile(b) => {
                for t in &b.tables {
                    rep.mvcc
                        .absorb(&t.verify_mvcc(last_cts).map_err(EngineError::Storage)?);
                }
            }
        }
        rep.health = self.health.state();
        rep.utilization = match &self.backend {
            Backend::Nv(b) => b.heap().stats().utilization(),
            _ => 0.0,
        };
        Ok(rep)
    }

    // ------------------------------------------------------------------
    // Media-fault instrumentation
    // ------------------------------------------------------------------

    /// The labelled persistent extents of a table — fault-injection targets
    /// for the media-torture harness (NVM backend only).
    pub fn media_extents(&self, table: TableId) -> Result<Vec<MediaExtent>> {
        self.check_table(table)?;
        match &self.backend {
            Backend::Nv(b) => b.tables[table.0]
                .media_extents()
                .map_err(EngineError::Storage),
            _ => Err(EngineError::Unsupported(
                "media extents require the NVM backend",
            )),
        }
    }

    /// The labelled persistent extents of a table's indexes — checksummed
    /// node/entry runs usable as corruption targets by the real-file
    /// media-fault harness (NVM backend only).
    pub fn index_media_extents(&self, table: TableId) -> Result<Vec<MediaExtent>> {
        self.check_table(table)?;
        match &self.backend {
            Backend::Nv(b) => {
                let set = &b.indexes[table.0];
                let mut out = Vec::new();
                for idx in &set.hash {
                    out.extend(idx.media_extents().map_err(EngineError::Storage)?);
                }
                for idx in &set.ordered {
                    out.extend(idx.media_extents().map_err(EngineError::Storage)?);
                }
                Ok(out)
            }
            _ => Err(EngineError::Unsupported(
                "media extents require the NVM backend",
            )),
        }
    }

    /// On-demand media verification of every persistent structure: table
    /// checksums plus MVCC timestamp plausibility, then index↔table
    /// agreement. Returns the number of structures verified; any media
    /// fault surfaces as a typed error (NVM backend only).
    pub fn verify_media(&self) -> Result<u64> {
        let b = match &self.backend {
            Backend::Nv(b) => b,
            _ => {
                return Err(EngineError::Unsupported(
                    "media verification requires the NVM backend",
                ))
            }
        };
        let last_cts = b.last_cts()?;
        let mut n = 0u64;
        for t in &b.tables {
            n += t.verify_media(last_cts).map_err(EngineError::Storage)?;
        }
        for (t, set) in b.tables.iter().zip(&b.indexes) {
            for idx in &set.hash {
                let check = idx.verify_against(t).map_err(EngineError::Storage)?;
                if !check.is_clean() {
                    return Err(EngineError::Catalog(
                        "hash index disagrees with its table".into(),
                    ));
                }
                n += 1;
            }
            for idx in &set.ordered {
                let check = idx.verify_against(t).map_err(EngineError::Storage)?;
                if !check.is_clean() {
                    return Err(EngineError::Catalog(
                        "ordered index disagrees with its table".into(),
                    ));
                }
                n += 1;
            }
        }
        Ok(n)
    }
}

/// [`timed_phase`] probe over an NVM region: the simulated clock plus the
/// region's persist counters, so each recovery phase's report row carries
/// the traffic it generated.
fn nv_probe(
    region: &std::sync::Arc<nvm::NvmRegion>,
) -> impl Fn() -> (u64, PersistStats) + Copy + '_ {
    move || {
        let s = region.stats();
        (
            region.clock().now_ns(),
            PersistStats {
                bytes_written: s.bytes_written,
                flushes: s.flush_calls,
                lines_flushed: s.lines_flushed,
                fences: s.fences,
            },
        )
    }
}

/// Recovery rungs 0–2 for the NVM-with-shadow backend: catalogue decode
/// with per-table failure isolation, bounded retry of transiently poisoned
/// reads (rung 1), media verification of every checksummed structure, WAL
/// fallback replay for tables whose NVM image cannot be trusted (rung 2),
/// and per-index verify-or-rebuild (rung 1).
fn attach_with_ladder(
    heap: NvmHeap,
    wal_cfg: &WalConfig,
    report: &mut RecoveryReport,
    retries: &mut u64,
    clock: impl Fn() -> (u64, PersistStats) + Copy,
) -> Result<NvBackend> {
    use storage::nv::NvTable;

    // Catalogue decode. Catalogue-level damage stays fatal: without the
    // table registry nothing can be salvaged, not even from the log.
    let mut parts = timed_phase(
        &mut report.phases,
        "catalogue + transient rebuild",
        clock,
        || retry_poisoned(retries, || NvBackend::attach_parts(heap.clone())),
    )?;
    let last_cts = parts.last_cts;

    // Rung 1: transiently poisoned table opens get a bounded retry.
    let retry_heap = parts.heap.clone();
    for (slot, &root) in parts.tables.iter_mut().zip(parts.roots.iter()) {
        if matches!(slot, Err(e) if is_transient_poison(e)) {
            *slot = retry_poisoned(retries, || {
                NvTable::open(&retry_heap, root).map_err(EngineError::Storage)
            });
        }
    }

    // Rung-0 detection: media-verify every table — block headers and
    // checksummed payloads plus MVCC timestamp plausibility. A table whose
    // image cannot be trusted goes on the rebuild list.
    let mut unhealthy: Vec<usize> = Vec::new();
    let mut verified = 0u64;
    timed_phase(&mut report.phases, "media verification", clock, || {
        for (t, slot) in parts.tables.iter().enumerate() {
            match slot {
                Err(_) => unhealthy.push(t),
                Ok(tab) => match retry_poisoned(retries, || {
                    tab.verify_media(last_cts).map_err(EngineError::Storage)
                }) {
                    Ok(n) => verified += n,
                    Err(_) => unhealthy.push(t),
                },
            }
        }
        Ok::<(), EngineError>(())
    })?;
    report.media_structures_verified = verified;

    // Rung 2: rebuild broken tables from the shadow log, bounded at the
    // published commit timestamp (the `log ⊇ published state` invariant).
    // The old trees stay allocated but unreachable — quarantined, since
    // their block metadata cannot be trusted after a media fault.
    if !unhealthy.is_empty() {
        let mut replayed = 0u64;
        timed_phase(&mut report.phases, "wal fallback replay", clock, || {
            let paths = wal::WalPaths::new(&wal_cfg.dir).map_err(wal::WalError::Io)?;
            let (meta, mut skel) = wal::load_checkpoint(&paths.checkpoint())?;
            let rep =
                wal::replay_log_bounded(&paths.log(), meta.covered_log_pos, &mut skel, last_cts)?;
            replayed = rep.records;
            for &t in &unhealthy {
                let src = skel.get(t).ok_or_else(|| {
                    EngineError::Catalog(
                        "shadow checkpoint is missing a table the catalogue lists".into(),
                    )
                })?;
                let nt = NvBackend::rebuild_table_from(&parts.heap, src)?;
                parts.swap_table_root(t, nt.root_offset())?;
                let slot = parts.tables.get_mut(t).ok_or_else(|| {
                    EngineError::Catalog("rebuilt table slot vanished from catalogue".into())
                })?;
                *slot = Ok(nt);
            }
            Ok::<(), EngineError>(())
        })?;
        report.rung = 2;
        report.log_records_replayed = replayed;
        report.structures_rebuilt += unhealthy.len() as u64;
        report.blocks_quarantined += unhealthy.len() as u64;
    }

    // Index verify-or-rebuild. Indexes of rebuilt tables are rebuilt
    // unconditionally — their old entries point into the quarantined tree.
    // Healthy tables keep their indexes unless attach or verification
    // against the table fails.
    let mut indexes: Vec<NvTableIndexes> = Vec::new();
    let mut attached = 0u64;
    let mut rebuilt = 0u64;
    timed_phase(&mut report.phases, "index verify + attach", clock, || {
        for (t, slot) in parts.tables.iter().enumerate() {
            let table = match slot {
                Ok(tab) => tab,
                Err(_) => {
                    return Err(EngineError::Catalog(
                        "table slot left unhealthy after ladder".into(),
                    ))
                }
            };
            let force = unhealthy.contains(&t);
            let mut set = NvTableIndexes {
                hash: Vec::new(),
                ordered: Vec::new(),
            };
            for e in parts.index_entries(t)? {
                match e.kind {
                    KIND_HASH => {
                        let ok = if force {
                            None
                        } else {
                            attach_hash(&parts, table, &e, retries)
                        };
                        match ok {
                            Some(idx) => {
                                attached += 1;
                                set.hash.push(idx);
                            }
                            None => {
                                let nbuckets = (table.row_count() * 2).max(1024);
                                let idx = NvHashIndex::build_from(
                                    &parts.heap,
                                    table,
                                    e.column,
                                    nbuckets,
                                )?;
                                parts.swap_index_desc(&e, idx.desc_offset())?;
                                rebuilt += 1;
                                set.hash.push(idx);
                            }
                        }
                    }
                    KIND_ORDERED => {
                        let ok = if force {
                            None
                        } else {
                            attach_ordered(&parts, table, &e, retries)
                        };
                        match ok {
                            Some(idx) => {
                                attached += 1;
                                set.ordered.push(idx);
                            }
                            None => {
                                let idx = NvOrderedIndex::build_from(&parts.heap, table, e.column)?;
                                parts.swap_index_desc(&e, idx.desc_offset())?;
                                rebuilt += 1;
                                set.ordered.push(idx);
                            }
                        }
                    }
                    _ => return Err(EngineError::Catalog("unknown index kind".into())),
                }
            }
            indexes.push(set);
        }
        Ok(())
    })?;
    if rebuilt > 0 {
        report.rung = report.rung.max(1);
        report.structures_rebuilt += rebuilt;
        report.blocks_quarantined += rebuilt;
    }
    report.indexes_attached = attached;
    report.indexes_rebuilt = rebuilt;

    parts.into_backend(indexes)
}

/// Attach + verify one persistent hash index; `None` means "rebuild it".
fn attach_hash(
    parts: &crate::backend_nv::AttachParts,
    table: &storage::nv::NvTable,
    e: &crate::backend_nv::IndexEntrySpec,
    retries: &mut u64,
) -> Option<NvHashIndex> {
    retry_poisoned(retries, || {
        let idx = NvHashIndex::open(&parts.heap, e.desc).map_err(EngineError::Storage)?;
        let check = idx.verify_against(table).map_err(EngineError::Storage)?;
        Ok((idx, check))
    })
    .ok()
    .and_then(|(idx, check)| check.is_clean().then_some(idx))
}

/// Attach + verify one persistent ordered index; `None` means "rebuild it".
fn attach_ordered(
    parts: &crate::backend_nv::AttachParts,
    table: &storage::nv::NvTable,
    e: &crate::backend_nv::IndexEntrySpec,
    retries: &mut u64,
) -> Option<NvOrderedIndex> {
    retry_poisoned(retries, || {
        let idx = NvOrderedIndex::open(&parts.heap, e.desc).map_err(EngineError::Storage)?;
        let check = idx.verify_against(table).map_err(EngineError::Storage)?;
        Ok((idx, check))
    })
    .ok()
    .and_then(|(idx, check)| check.is_clean().then_some(idx))
}

/// Shared retry budget for transient failures: recovery's rung-1 poison
/// retries and [`retry_write`]'s capacity retries draw on the same bound,
/// so "how long the engine struggles before giving up" is one knob.
pub(crate) const MAX_TRANSIENT_RETRIES: u64 = 8;

/// Bounded retry for transiently poisoned NVM reads (recovery rung 1): the
/// fault model clears a transient poison after a bounded number of failing
/// reads, so a handful of retries repairs it in place. Permanent poison,
/// checksum mismatches, and every other error pass straight through.
fn retry_poisoned<T>(retries: &mut u64, mut f: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient_poison(&e) && attempt < MAX_TRANSIENT_RETRIES => {
                attempt += 1;
                *retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Bounded retry-with-backoff for writes under capacity pressure — the
/// write-path twin of recovery's rung-1 poison retry (same
/// [`MAX_TRANSIENT_RETRIES`] budget). A retryable rejection (backpressure
/// or typed capacity exhaustion) triggers an exponential backoff charged
/// to the simulated clock, then an emergency [`Database::reclaim`] pass,
/// then the operation runs again. Non-retryable errors (conflicts,
/// read-only mode, corruption) pass straight through.
///
/// ```
/// use hyrise_nv::{retry_write, Database, DurabilityConfig};
/// use storage::{ColumnDef, DataType, Schema, Value};
///
/// let mut db = Database::create(DurabilityConfig::nvm_default()).unwrap();
/// let t = db
///     .create_table("t", Schema::new(vec![ColumnDef::new("k", DataType::Int)]))
///     .unwrap();
/// let mut tx = db.begin();
/// let row = retry_write(&mut db, |db| db.insert(&mut tx, t, &[Value::Int(7)])).unwrap();
/// db.commit(&mut tx).unwrap();
/// assert_eq!(row, 0);
/// ```
pub fn retry_write<T>(
    db: &mut Database,
    mut op: impl FnMut(&mut Database) -> Result<T>,
) -> Result<T> {
    let mut attempt = 0u64;
    loop {
        match op(db) {
            Err(e) if e.is_retryable() && attempt < MAX_TRANSIENT_RETRIES => {
                attempt += 1;
                if let Backend::Nv(b) = &db.backend {
                    b.region().clock().charge(1_000u64 << attempt.min(10));
                }
                db.reclaim()?;
            }
            other => return other,
        }
    }
}

/// True when the error is a transiently poisoned read that a bounded retry
/// can clear.
fn is_transient_poison(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::Nvm(nvm::NvmError::PoisonedRead {
            permanent: false,
            ..
        }) | EngineError::Storage(storage::StorageError::Nvm(nvm::NvmError::PoisonedRead {
            permanent: false,
            ..
        }))
    )
}

/// Durable commit publish for the WAL backend: append a commit record; sync
/// when the group-commit window fills.
struct WalPublisher<'a> {
    writer: &'a mut LogWriter,
    commits_since_sync: &'a mut u32,
    every: u32,
}

impl txn::CommitPublish for WalPublisher<'_> {
    fn publish(&mut self, cts: u64, txn: &Transaction) -> txn::Result<()> {
        self.writer
            .append(&wal::LogRecord::Commit { tid: txn.tid, cts })
            .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
        *self.commits_since_sync += 1;
        if *self.commits_since_sync >= self.every {
            self.writer
                .sync()
                .map_err(|e| txn::TxnError::Publish(e.to_string()))?;
            *self.commits_since_sync = 0;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("mode", &self.mode())
            .field("tables", &self.table_count())
            .field("last_committed", &self.mgr.last_committed())
            .finish()
    }
}
