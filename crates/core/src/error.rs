//! Engine-level error type.

use std::fmt;

/// Errors surfaced by the [`crate::Database`] façade.
#[derive(Debug)]
pub enum EngineError {
    /// Storage-layer failure.
    Storage(storage::StorageError),
    /// Transaction-layer failure (including write conflicts).
    Txn(txn::TxnError),
    /// WAL-layer failure.
    Wal(wal::WalError),
    /// NVM substrate failure.
    Nvm(nvm::NvmError),
    /// Catalogue misuse (unknown table, duplicate name, limits exceeded…).
    Catalog(String),
    /// The operation is not supported by the active durability backend.
    Unsupported(&'static str),
    /// A persistent resource ran out of space mid-operation. The operation
    /// unwound to a clean abort (reserved blocks freed, registry entries
    /// retired); retry after reclamation ([`crate::Database::reclaim`]).
    CapacityExhausted {
        /// Which resource hit the wall (`nvm-heap`, `shadow-wal`,
        /// `commit-publish`).
        resource: &'static str,
        /// Human-readable cause from the underlying layer.
        detail: String,
    },
    /// Heap utilization crossed the backpressure watermark: new writes are
    /// rejected until reclamation brings utilization back under the resume
    /// watermark. Retryable — see [`crate::retry_write`].
    Backpressure {
        /// Utilization at rejection time, in percent.
        utilization_pct: u32,
    },
    /// The engine is in read-only degraded mode (utilization crossed the
    /// read-only watermark, or the shadow log wedged). Reads are served;
    /// writes and DDL are rejected until [`crate::Database::reclaim`]
    /// succeeds.
    ReadOnly {
        /// Why the engine degraded.
        reason: &'static str,
    },
}

impl EngineError {
    /// True for typed capacity-exhaustion errors (the operation already
    /// unwound cleanly; space must be reclaimed before retrying).
    pub fn is_capacity(&self) -> bool {
        matches!(self, EngineError::CapacityExhausted { .. })
    }

    /// True when the caller may retry the operation after reclamation —
    /// capacity exhaustion and watermark backpressure both qualify;
    /// read-only mode does not (it needs an explicit
    /// [`crate::Database::reclaim`] first).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            EngineError::CapacityExhausted { .. } | EngineError::Backpressure { .. }
        )
    }

    /// Normalize out-of-space failures from every layer into the typed
    /// [`EngineError::CapacityExhausted`]. The commit publisher reports
    /// through the stringly `TxnError::Publish`, so that arm matches on the
    /// two known out-of-space renderings.
    pub(crate) fn normalize_capacity(self) -> EngineError {
        fn nvm_oom(e: &nvm::NvmError) -> bool {
            matches!(e, nvm::NvmError::OutOfMemory { .. })
        }
        match self {
            EngineError::Nvm(e) if nvm_oom(&e) => EngineError::CapacityExhausted {
                resource: "nvm-heap",
                detail: e.to_string(),
            },
            EngineError::Storage(storage::StorageError::Nvm(e)) if nvm_oom(&e) => {
                EngineError::CapacityExhausted {
                    resource: "nvm-heap",
                    detail: e.to_string(),
                }
            }
            EngineError::Txn(txn::TxnError::Storage(storage::StorageError::Nvm(e)))
                if nvm_oom(&e) =>
            {
                EngineError::CapacityExhausted {
                    resource: "nvm-heap",
                    detail: e.to_string(),
                }
            }
            EngineError::Wal(e) if e.is_full() => EngineError::CapacityExhausted {
                resource: "shadow-wal",
                detail: e.to_string(),
            },
            EngineError::Txn(txn::TxnError::Publish(s))
                if s.contains("log device full") || s.contains("out of memory") =>
            {
                EngineError::CapacityExhausted {
                    resource: "commit-publish",
                    detail: s,
                }
            }
            other => other,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Txn(e) => write!(f, "txn: {e}"),
            EngineError::Wal(e) => write!(f, "wal: {e}"),
            EngineError::Nvm(e) => write!(f, "nvm: {e}"),
            EngineError::Catalog(s) => write!(f, "catalog: {s}"),
            EngineError::Unsupported(s) => write!(f, "unsupported by this backend: {s}"),
            EngineError::CapacityExhausted { resource, detail } => {
                write!(f, "capacity exhausted on {resource}: {detail}")
            }
            EngineError::Backpressure { utilization_pct } => write!(
                f,
                "backpressure: heap utilization {utilization_pct}% is over the watermark; \
                 retry after reclamation"
            ),
            EngineError::ReadOnly { reason } => {
                write!(f, "engine is read-only: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Txn(e) => Some(e),
            EngineError::Wal(e) => Some(e),
            EngineError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<storage::StorageError> for EngineError {
    fn from(e: storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}
impl From<txn::TxnError> for EngineError {
    fn from(e: txn::TxnError) -> Self {
        EngineError::Txn(e)
    }
}
impl From<wal::WalError> for EngineError {
    fn from(e: wal::WalError) -> Self {
        EngineError::Wal(e)
    }
}
impl From<nvm::NvmError> for EngineError {
    fn from(e: nvm::NvmError) -> Self {
        EngineError::Nvm(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// True if the error is a write-write conflict the caller should retry.
pub fn is_conflict(e: &EngineError) -> bool {
    match e {
        EngineError::Txn(t) => txn::is_conflict(t),
        EngineError::Storage(storage::StorageError::WriteConflict { .. }) => true,
        _ => false,
    }
}
