//! Engine-level error type.

use std::fmt;

/// Errors surfaced by the [`crate::Database`] façade.
#[derive(Debug)]
pub enum EngineError {
    /// Storage-layer failure.
    Storage(storage::StorageError),
    /// Transaction-layer failure (including write conflicts).
    Txn(txn::TxnError),
    /// WAL-layer failure.
    Wal(wal::WalError),
    /// NVM substrate failure.
    Nvm(nvm::NvmError),
    /// Catalogue misuse (unknown table, duplicate name, limits exceeded…).
    Catalog(String),
    /// The operation is not supported by the active durability backend.
    Unsupported(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Txn(e) => write!(f, "txn: {e}"),
            EngineError::Wal(e) => write!(f, "wal: {e}"),
            EngineError::Nvm(e) => write!(f, "nvm: {e}"),
            EngineError::Catalog(s) => write!(f, "catalog: {s}"),
            EngineError::Unsupported(s) => write!(f, "unsupported by this backend: {s}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Txn(e) => Some(e),
            EngineError::Wal(e) => Some(e),
            EngineError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<storage::StorageError> for EngineError {
    fn from(e: storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}
impl From<txn::TxnError> for EngineError {
    fn from(e: txn::TxnError) -> Self {
        EngineError::Txn(e)
    }
}
impl From<wal::WalError> for EngineError {
    fn from(e: wal::WalError) -> Self {
        EngineError::Wal(e)
    }
}
impl From<nvm::NvmError> for EngineError {
    fn from(e: nvm::NvmError) -> Self {
        EngineError::Nvm(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// True if the error is a write-write conflict the caller should retry.
pub fn is_conflict(e: &EngineError) -> bool {
    match e {
        EngineError::Txn(t) => txn::is_conflict(t),
        EngineError::Storage(storage::StorageError::WriteConflict { .. }) => true,
        _ => false,
    }
}
