//! Shadow write-ahead log for the NVM backend — recovery rung 2.
//!
//! The NVM backend's primary data never needs a log: restart is a remap.
//! But a *media* fault (scribbled block, stuck line) can destroy primary
//! data that checksums will detect and nothing on the NVM side can repair.
//! The shadow log closes that gap: every write is also appended to a
//! file-backed redo log, and every commit syncs the log **before** the
//! commit timestamp is published to NVM. That ordering makes the log a
//! superset of the published NVM state, so a table whose NVM image fails
//! verification can be rebuilt by replaying the log bounded at the
//! published commit timestamp (see `wal::replay_log_bounded`).
//!
//! The checkpoint file holds a full serialized copy of every table taken at
//! a quiesced point (DDL, end of recovery), covering the log position at
//! that moment; rung 2 loads it and replays only the log suffix. The
//! post-recovery re-baseline is a correctness requirement, not an
//! optimization: a crash can leave the log holding insert records for rows
//! that never became durable on NVM, and row ids handed out after the
//! restart would collide with that stale suffix on a later replay.
//! Re-baselining from the recovered state retires the old prefix. Sync
//! latency is charged to the same simulated clock as the NVM persistence
//! primitives, keeping one cost model across both durability mechanisms.

use std::sync::Arc;

use nvm::{NvmRegion, SimClock};
use storage::mvcc::TS_INF;
use storage::{TableStore, VTable, Value};
use wal::{LogRecord, LogWriter, WalPaths};

use crate::config::WalConfig;
use crate::error::{EngineError, Result};

/// The shadow redo log attached to an NVM backend.
pub(crate) struct ShadowWal {
    pub(crate) cfg: WalConfig,
    pub(crate) paths: WalPaths,
    writer: LogWriter,
    /// Shared so sync latency lands on the NVM backend's simulated clock.
    region: Arc<NvmRegion>,
}

impl ShadowWal {
    /// Create a fresh shadow log in `cfg.dir` (existing files truncated).
    pub fn create(cfg: WalConfig, region: Arc<NvmRegion>) -> Result<ShadowWal> {
        let paths = WalPaths::new(&cfg.dir).map_err(wal::WalError::Io)?;
        let _ = std::fs::remove_file(paths.log());
        let _ = std::fs::remove_file(paths.checkpoint());
        Self::open_at(cfg, paths, region)
    }

    /// Re-open an existing shadow log after a restart (files preserved).
    pub fn reopen(cfg: WalConfig, region: Arc<NvmRegion>) -> Result<ShadowWal> {
        let paths = WalPaths::new(&cfg.dir).map_err(wal::WalError::Io)?;
        Self::open_at(cfg, paths, region)
    }

    fn open_at(cfg: WalConfig, paths: WalPaths, region: Arc<NvmRegion>) -> Result<ShadowWal> {
        // The writer gets a private clock with zero latency; sync cost is
        // charged explicitly to the region's clock so both durability
        // mechanisms share one simulated timeline.
        let writer = LogWriter::open(&paths.log(), Arc::new(SimClock::new()), 0)?;
        Ok(ShadowWal {
            cfg,
            paths,
            writer,
            region,
        })
    }

    /// Log activity counters.
    pub fn stats(&self) -> wal::WalStats {
        self.writer.stats()
    }

    /// Arm a one-shot out-of-space fault on the underlying writer.
    pub fn arm_fault(&mut self, spec: wal::WalFaultSpec) {
        self.writer.arm_fault(spec);
    }

    /// True while the writer is wedged by an out-of-space failure: every
    /// append/sync fails fast until the log is recreated.
    pub fn is_wedged(&self) -> bool {
        self.writer.is_wedged()
    }

    /// Append a redo record for an insert (durable at the next sync).
    pub fn log_insert(&mut self, tid: u64, table: usize, row: u64, values: &[Value]) -> Result<()> {
        self.writer.append(&LogRecord::Insert {
            tid,
            table: table as u32,
            row,
            values: values.to_vec(),
        })?;
        Ok(())
    }

    /// Append a redo record for an invalidation.
    pub fn log_invalidate(&mut self, tid: u64, table: usize, row: u64) -> Result<()> {
        self.writer.append(&LogRecord::Invalidate {
            tid,
            table: table as u32,
            row,
        })?;
        Ok(())
    }

    /// Append an abort record (no sync required; an unsynced abort replays
    /// identically to a missing commit).
    pub fn log_abort(&mut self, tid: u64) -> Result<()> {
        self.writer.append(&LogRecord::Abort { tid })?;
        Ok(())
    }

    /// Append a commit record and sync. Must be called **before** the NVM
    /// commit-timestamp publish: the invariant `log ⊇ published state` is
    /// what makes bounded replay a faithful rung-2 fallback.
    pub fn log_commit_synced(&mut self, tid: u64, cts: u64) -> Result<()> {
        self.writer.append(&LogRecord::Commit { tid, cts })?;
        self.sync()
    }

    /// Append a merge record and sync, **before** the merge executes: a
    /// crash after the sync but before the merge completes replays the
    /// merge, reproducing the post-merge row-id space that any later log
    /// records reference.
    pub fn log_merge_synced(&mut self, table: usize, cts: u64) -> Result<()> {
        self.writer.append(&LogRecord::Merge {
            table: table as u32,
            cts,
        })?;
        self.sync()
    }

    fn sync(&mut self) -> Result<()> {
        self.writer.sync()?;
        self.region.clock().charge(self.cfg.sync_latency_ns);
        Ok(())
    }

    /// Rewrite the checkpoint with the full current contents of every
    /// table, covering the current (synced) log position. Only valid at
    /// quiesced points — no pending MVCC markers — which holds for its two
    /// call sites: DDL and the end of recovery.
    pub fn checkpoint_full(
        &mut self,
        names: &[String],
        tables: &[impl TableStore],
        last_cts: u64,
    ) -> Result<()> {
        // A checkpoint may only cover durable log bytes.
        self.sync()?;
        let exported: Vec<(String, VTable)> = names
            .iter()
            .zip(tables)
            .map(|(n, t)| Ok((n.clone(), export_vtable(t)?)))
            .collect::<Result<_>>()?;
        let named: Vec<(String, &VTable)> = exported.iter().map(|(n, t)| (n.clone(), t)).collect();
        wal::write_checkpoint(
            &self.paths.checkpoint(),
            &named,
            last_cts,
            self.writer.position(),
        )?;
        Ok(())
    }
}

/// Deep-copy a table into a DRAM [`VTable`], preserving physical row ids,
/// begin/end timestamps, and tombstones. Only valid on a quiesced table.
fn export_vtable(src: &impl TableStore) -> Result<VTable> {
    let mut out = VTable::new(src.schema().clone());
    for row in 0..src.row_count() {
        let values = src.row_values(row).map_err(EngineError::Storage)?;
        let begin = src.begin_ts(row).map_err(EngineError::Storage)?;
        let got = out
            .insert_version(&values, begin)
            .map_err(EngineError::Storage)?;
        debug_assert_eq!(got, row);
        let end = src.end_ts(row).map_err(EngineError::Storage)?;
        if end != TS_INF {
            out.commit_invalidate(row, end)
                .map_err(EngineError::Storage)?;
        }
    }
    Ok(out)
}

impl std::fmt::Debug for ShadowWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowWal")
            .field("dir", &self.cfg.dir)
            .field("stats", &self.writer.stats())
            .finish()
    }
}
