//! Simple analytical operators over visible rows: aggregation with
//! optional grouping.
//!
//! Hyrise is an analytical columnar engine; the read side of its workloads
//! is scans + aggregations over the dictionary-encoded columns. These
//! operators run over any backend and respect MVCC visibility like the
//! scans they build on.

use std::collections::BTreeMap;

use storage::Value;
use txn::Transaction;

use crate::db::{Database, TableId};
use crate::error::{EngineError, Result};

/// Aggregate function selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Number of visible rows.
    Count,
    /// Sum of a numeric column (Int → Int, Double → Double).
    Sum,
    /// Minimum value (any type, total order).
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean of a numeric column (always Double).
    Avg,
}

/// One result group: the grouping key (`None` for a global aggregate) and
/// the aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// Group key, when grouping.
    pub group: Option<Value>,
    /// Aggregate result. `None` for min/max/avg over an empty input.
    pub value: Option<Value>,
}

#[derive(Debug, Default)]
struct Accumulator {
    count: u64,
    sum_i: i64,
    sum_f: f64,
    min: Option<Value>,
    max: Option<Value>,
    any_double: bool,
}

impl Accumulator {
    fn feed(&mut self, v: &Value) {
        self.count += 1;
        match v {
            Value::Int(i) => {
                self.sum_i = self.sum_i.wrapping_add(*i);
                self.sum_f += *i as f64;
            }
            Value::Double(d) => {
                self.sum_f += d;
                self.any_double = true;
            }
            Value::Text(_) => {}
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
    }

    fn finish(&self, agg: Agg) -> Option<Value> {
        match agg {
            Agg::Count => Some(Value::Int(self.count as i64)),
            Agg::Sum => Some(if self.any_double {
                Value::Double(self.sum_f)
            } else {
                Value::Int(self.sum_i)
            }),
            Agg::Min => self.min.clone(),
            Agg::Max => self.max.clone(),
            Agg::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(Value::Double(self.sum_f / self.count as f64))
                }
            }
        }
    }
}

impl Database {
    /// Aggregate `column` over the rows visible to `tx`, optionally grouped
    /// by `group_by`. Results come back sorted by group key.
    ///
    /// `Sum`/`Avg` require a numeric column; `Count`/`Min`/`Max` work on
    /// any type.
    pub fn aggregate(
        &self,
        tx: &Transaction,
        table: TableId,
        column: usize,
        agg: Agg,
        group_by: Option<usize>,
    ) -> Result<Vec<AggRow>> {
        let store = self.table_store(table)?;
        let schema = store.schema();
        let dtype = schema.column(column)?.dtype;
        if matches!(agg, Agg::Sum | Agg::Avg) && dtype == storage::DataType::Text {
            return Err(EngineError::Catalog(format!(
                "cannot {agg:?} over text column {column}"
            )));
        }
        if let Some(g) = group_by {
            schema.column(g)?;
        }

        let rows = store.scan_visible(tx.snapshot, tx.tid)?;
        if let Some(g) = group_by {
            let mut groups: BTreeMap<Value, Accumulator> = BTreeMap::new();
            for row in rows {
                let key = store.value(row, g)?;
                let v = store.value(row, column)?;
                groups.entry(key).or_default().feed(&v);
            }
            Ok(groups
                .into_iter()
                .map(|(k, acc)| AggRow {
                    group: Some(k),
                    value: acc.finish(agg),
                })
                .collect())
        } else {
            let mut acc = Accumulator::default();
            for row in rows {
                let v = store.value(row, column)?;
                acc.feed(&v);
            }
            Ok(vec![AggRow {
                group: None,
                value: acc.finish(agg),
            }])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DurabilityConfig;
    use storage::{ColumnDef, DataType, Schema};

    fn db_with_data() -> (Database, TableId) {
        let mut db = Database::create(DurabilityConfig::nvm_default()).unwrap();
        let t = db
            .create_table(
                "sales",
                Schema::new(vec![
                    ColumnDef::new("region", DataType::Text),
                    ColumnDef::new("amount", DataType::Int),
                    ColumnDef::new("rate", DataType::Double),
                ]),
            )
            .unwrap();
        let mut tx = db.begin();
        for (region, amount, rate) in [
            ("east", 10, 0.5),
            ("west", 20, 1.5),
            ("east", 30, 2.5),
            ("west", 40, 3.5),
            ("north", 5, 0.25),
        ] {
            db.insert(
                &mut tx,
                t,
                &[region.into(), Value::Int(amount), Value::Double(rate)],
            )
            .unwrap();
        }
        db.commit(&mut tx).unwrap();
        (db, t)
    }

    #[test]
    fn global_aggregates() {
        let (mut db, t) = db_with_data();
        let tx = db.begin();
        let count = db.aggregate(&tx, t, 1, Agg::Count, None).unwrap();
        assert_eq!(count[0].value, Some(Value::Int(5)));
        let sum = db.aggregate(&tx, t, 1, Agg::Sum, None).unwrap();
        assert_eq!(sum[0].value, Some(Value::Int(105)));
        let min = db.aggregate(&tx, t, 1, Agg::Min, None).unwrap();
        assert_eq!(min[0].value, Some(Value::Int(5)));
        let max = db.aggregate(&tx, t, 0, Agg::Max, None).unwrap();
        assert_eq!(max[0].value, Some(Value::Text("west".into())));
        let avg = db.aggregate(&tx, t, 1, Agg::Avg, None).unwrap();
        assert_eq!(avg[0].value, Some(Value::Double(21.0)));
    }

    #[test]
    fn grouped_aggregates_sorted_by_key() {
        let (mut db, t) = db_with_data();
        let tx = db.begin();
        let rows = db.aggregate(&tx, t, 1, Agg::Sum, Some(0)).unwrap();
        assert_eq!(
            rows,
            vec![
                AggRow {
                    group: Some("east".into()),
                    value: Some(Value::Int(40))
                },
                AggRow {
                    group: Some("north".into()),
                    value: Some(Value::Int(5))
                },
                AggRow {
                    group: Some("west".into()),
                    value: Some(Value::Int(60))
                },
            ]
        );
    }

    #[test]
    fn aggregates_respect_visibility() {
        let (mut db, t) = db_with_data();
        // Uncommitted insert must not count for other transactions.
        let mut writer = db.begin();
        db.insert(
            &mut writer,
            t,
            &["east".into(), Value::Int(999), Value::Double(0.0)],
        )
        .unwrap();
        let reader = db.begin();
        let sum = db.aggregate(&reader, t, 1, Agg::Sum, None).unwrap();
        assert_eq!(sum[0].value, Some(Value::Int(105)));
        // ...but the writer sees its own row.
        let sum = db.aggregate(&writer, t, 1, Agg::Sum, None).unwrap();
        assert_eq!(sum[0].value, Some(Value::Int(1104)));
    }

    #[test]
    fn sum_over_text_rejected() {
        let (mut db, t) = db_with_data();
        let tx = db.begin();
        assert!(db.aggregate(&tx, t, 0, Agg::Sum, None).is_err());
        assert!(db.aggregate(&tx, t, 0, Agg::Avg, None).is_err());
        // Count over text is fine.
        assert!(db.aggregate(&tx, t, 0, Agg::Count, None).is_ok());
    }

    #[test]
    fn double_sums_promote() {
        let (mut db, t) = db_with_data();
        let tx = db.begin();
        let sum = db.aggregate(&tx, t, 2, Agg::Sum, None).unwrap();
        assert_eq!(sum[0].value, Some(Value::Double(8.25)));
    }

    #[test]
    fn aggregates_survive_restart() {
        let (mut db, t) = db_with_data();
        db.restart_after_crash().unwrap();
        let tx = db.begin();
        let rows = db.aggregate(&tx, t, 1, Agg::Sum, Some(0)).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].value, Some(Value::Int(60)));
    }
}
