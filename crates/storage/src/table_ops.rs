//! The table interface shared by the volatile and NVM storage variants.

use crate::{mvcc, ColumnId, Result, RowId, Schema, Value};

/// Outcome of a delta→main merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Physical rows (main + delta) before the merge.
    pub rows_before: u64,
    /// Rows surviving into the new main.
    pub rows_merged: u64,
    /// Invalidated/aborted versions dropped by the merge.
    pub rows_dropped: u64,
}

/// A materialized scan hit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// Physical row id of the visible version.
    pub row: RowId,
    /// The row's values in schema order.
    pub values: Vec<Value>,
}

/// Operations every table substrate provides.
///
/// The transaction manager drives the MVCC lifecycle through this trait:
/// `insert_version` / `try_invalidate` during execution (with pending
/// markers), `commit_*` / `abort_*` at transaction end, and the `scan_*`
/// family for reads. Implementations persist what their durability story
/// requires: the NVM table flushes at each step per the paper's protocol,
/// the volatile table does nothing extra (its durability is the WAL).
pub trait TableStore: Send {
    /// The table schema.
    fn schema(&self) -> &Schema;

    /// Total physical rows (main + delta), including invisible versions.
    fn row_count(&self) -> u64;

    /// Number of rows in the main partition (row ids `0..main_rows`).
    fn main_rows(&self) -> u64;

    /// Append a new row version to the delta with `begin = begin_marker`
    /// (normally a pending marker) and `end = TS_INF`. Returns its row id.
    fn insert_version(&mut self, values: &[Value], begin_marker: u64) -> Result<RowId>;

    /// Claim the right to invalidate `row` by setting its end timestamp to
    /// `marker` (a pending marker). Fails with
    /// [`crate::StorageError::WriteConflict`] if another transaction already
    /// claimed or committed an invalidation — first committer wins.
    fn try_invalidate(&mut self, row: RowId, marker: u64) -> Result<()>;

    /// Roll back a pending invalidation (abort path): end goes back to
    /// `TS_INF`.
    fn restore_end(&mut self, row: RowId) -> Result<()>;

    /// Mark a pending insert as aborted: begin becomes
    /// [`crate::mvcc::TS_ABORTED`].
    fn abort_insert(&mut self, row: RowId) -> Result<()>;

    /// Commit a pending insert: begin becomes `cts`.
    fn commit_insert(&mut self, row: RowId, cts: u64) -> Result<()>;

    /// Commit a pending invalidation: end becomes `cts`.
    fn commit_invalidate(&mut self, row: RowId, cts: u64) -> Result<()>;

    /// Stamp a pending insert's begin word with `cts` without draining the
    /// write-back queue. A batching committer stamps every write of a
    /// transaction through `stamp_*`, then issues one [`Self::commit_fence`]
    /// per touched table before publishing — W stamps cost one fence
    /// instead of W. The default falls back to the fully-persisting
    /// [`Self::commit_insert`], so stores without a cheaper staged write
    /// remain correct (their `commit_fence` is a no-op).
    fn stamp_insert(&mut self, row: RowId, cts: u64) -> Result<()> {
        self.commit_insert(row, cts)
    }

    /// Stamp a pending invalidation's end word with `cts` without draining
    /// the write-back queue. See [`Self::stamp_insert`] for the contract.
    fn stamp_invalidate(&mut self, row: RowId, cts: u64) -> Result<()> {
        self.commit_invalidate(row, cts)
    }

    /// Drain the write-back queue so every previous `stamp_*` is durable.
    /// No-op by default (the default `stamp_*` already persist fully).
    fn commit_fence(&mut self) -> Result<()> {
        Ok(())
    }

    /// Begin timestamp word of `row`.
    fn begin_ts(&self, row: RowId) -> Result<u64>;

    /// End timestamp word of `row`.
    fn end_ts(&self, row: RowId) -> Result<u64>;

    /// Decode the value of one cell.
    fn value(&self, row: RowId, col: ColumnId) -> Result<Value>;

    /// Decode a full row.
    fn row_values(&self, row: RowId) -> Result<Vec<Value>> {
        (0..self.schema().len())
            .map(|c| self.value(row, c))
            .collect()
    }

    /// Row ids of all versions visible to `(snapshot, tid)`.
    fn scan_visible(&self, snapshot: u64, tid: u64) -> Result<Vec<RowId>>;

    /// Row ids of visible versions whose column `col` equals `value`.
    fn scan_eq(&self, col: ColumnId, value: &Value, snapshot: u64, tid: u64) -> Result<Vec<RowId>>;

    /// Row ids of visible versions with `lo <= col_value < hi` (either bound
    /// optional).
    fn scan_range(
        &self,
        col: ColumnId,
        lo: Option<&Value>,
        hi: Option<&Value>,
        snapshot: u64,
        tid: u64,
    ) -> Result<Vec<RowId>>;

    /// Fold the delta into a fresh main, keeping exactly the versions
    /// visible at `snapshot` (which must see no pending markers — merges run
    /// on a quiesced table). Row ids are re-assigned.
    fn merge(&mut self, snapshot: u64) -> Result<MergeStats>;

    /// Walk every MVCC timestamp word and check it against the quiesced,
    /// recovered-state invariants at `last_cts`: no pending markers may
    /// remain, and no committed timestamp may exceed the durably published
    /// watermark (an effect "from the future" is an uncommitted leak).
    /// The crash-torture harness runs this after every recovery.
    fn verify_mvcc(&self, last_cts: u64) -> Result<MvccCheck> {
        let mut check = MvccCheck::default();
        for row in 0..self.row_count() {
            check.rows += 1;
            let begin = self.begin_ts(row)?;
            let end = self.end_ts(row)?;
            if mvcc::is_pending(begin) || mvcc::is_pending(end) {
                check.pending_markers += 1;
                continue;
            }
            if mvcc::is_committed(begin) && begin > last_cts {
                check.future_timestamps += 1;
            }
            if mvcc::is_committed(end) && end > last_cts {
                check.future_timestamps += 1;
            }
        }
        Ok(check)
    }
}

/// Result of [`TableStore::verify_mvcc`]: a clean table has zeroes in both
/// violation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvccCheck {
    /// Physical rows walked.
    pub rows: u64,
    /// Rows still carrying a pending transaction marker — the recovery
    /// undo pass should have repaired every one of these.
    pub pending_markers: u64,
    /// Committed begin/end timestamps greater than the published
    /// `last_cts` — effects of transactions that never durably committed.
    pub future_timestamps: u64,
}

impl MvccCheck {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.pending_markers == 0 && self.future_timestamps == 0
    }

    /// Fold another table's check into this one.
    pub fn absorb(&mut self, other: &MvccCheck) {
        self.rows += other.rows;
        self.pending_markers += other.pending_markers;
        self.future_timestamps += other.future_timestamps;
    }
}
