//! MVCC timestamp encoding and visibility rules.
//!
//! Every row version carries two 64-bit words:
//!
//! * **begin** — the commit timestamp (CTS) at which the version became
//!   visible, or a *pending marker* while the inserting transaction is in
//!   flight, or [`TS_ABORTED`] if that transaction rolled back.
//! * **end** — [`TS_INF`] while the version is live, a pending marker while
//!   an invalidating transaction is in flight (this doubles as the row
//!   write-lock: first committer wins), or the CTS of the invalidation.
//!
//! Commit timestamps occupy `1..2^62`; merged-main rows use begin = 0
//! ("visible since forever"). The pending marker sets bit 63 and carries the
//! transaction id in the low bits, so ownership is checkable.
//!
//! On NVM these words are persisted in place; the commit protocol orders
//! their flushes against the durable global CTS publish (see the `txn`
//! crate) so that a crash can never expose a half-committed transaction.

/// "Never invalidated" end timestamp.
pub const TS_INF: u64 = u64::MAX;

/// Begin timestamp of a version whose inserting transaction aborted.
pub const TS_ABORTED: u64 = u64::MAX - 1;

/// Bit flagging a pending (uncommitted) marker.
pub const PENDING_BIT: u64 = 1 << 63;

/// Largest usable commit timestamp.
pub const MAX_CTS: u64 = (1 << 62) - 1;

/// Encode a pending marker owned by transaction `tid`.
#[inline]
pub fn pending(tid: u64) -> u64 {
    debug_assert!(tid <= MAX_CTS, "tid too large for pending marker");
    PENDING_BIT | tid
}

/// True if `ts` is a pending marker.
#[inline]
pub fn is_pending(ts: u64) -> bool {
    ts & PENDING_BIT != 0 && ts != TS_INF && ts != TS_ABORTED
}

/// Owner of a pending marker (meaningless if `!is_pending(ts)`).
#[inline]
pub fn pending_owner(ts: u64) -> u64 {
    ts & !PENDING_BIT
}

/// True if `ts` is a real commit timestamp (including the "0 = since
/// forever" of merged rows).
#[inline]
pub fn is_committed(ts: u64) -> bool {
    ts <= MAX_CTS
}

/// Visibility of a version `(begin, end)` to a reader with snapshot
/// timestamp `snapshot` running inside transaction `tid`.
///
/// A version is visible when:
/// * it was committed at or before the snapshot (`begin <= snapshot`), or it
///   was written by the reader's own transaction; and
/// * it has not been invalidated at or before the snapshot by a committed
///   transaction, nor invalidated by the reader's own transaction.
#[inline]
pub fn visible(begin: u64, end: u64, snapshot: u64, tid: u64) -> bool {
    let begin_ok = if is_pending(begin) {
        pending_owner(begin) == tid
    } else {
        is_committed(begin) && begin <= snapshot
    };
    if !begin_ok {
        return false;
    }
    if end == TS_INF {
        return true;
    }
    if is_pending(end) {
        // Invalidated by an in-flight transaction: still visible to others,
        // invisible to the invalidator itself.
        pending_owner(end) != tid
    } else {
        // Committed invalidation: visible only to snapshots before it.
        !is_committed(end) || end > snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_encoding() {
        let m = pending(42);
        assert!(is_pending(m));
        assert_eq!(pending_owner(m), 42);
        assert!(!is_pending(5));
        assert!(!is_pending(TS_INF));
        assert!(!is_pending(TS_ABORTED));
        assert!(!is_committed(m));
        assert!(is_committed(0));
        assert!(is_committed(MAX_CTS));
    }

    #[test]
    fn committed_version_visible_at_or_after_begin() {
        assert!(visible(5, TS_INF, 5, 1));
        assert!(visible(5, TS_INF, 9, 1));
        assert!(!visible(5, TS_INF, 4, 1));
        // Merged rows (begin 0) visible to everyone.
        assert!(visible(0, TS_INF, 0, 1));
    }

    #[test]
    fn own_pending_insert_visible_only_to_owner() {
        let b = pending(7);
        assert!(visible(b, TS_INF, 100, 7));
        assert!(!visible(b, TS_INF, 100, 8));
    }

    #[test]
    fn aborted_insert_invisible() {
        assert!(!visible(TS_ABORTED, TS_INF, u64::MAX - 2, 1));
    }

    #[test]
    fn committed_invalidation_hides_from_later_snapshots() {
        assert!(visible(1, 10, 9, 1));
        assert!(!visible(1, 10, 10, 1));
        assert!(!visible(1, 10, 11, 1));
    }

    #[test]
    fn pending_invalidation_hides_only_from_owner() {
        let e = pending(3);
        assert!(!visible(1, e, 5, 3), "invalidator no longer sees the row");
        assert!(visible(1, e, 5, 4), "others still see it until commit");
    }
}
