//! The DRAM-resident table variant (substrate of the log-based baseline).

use std::collections::HashMap;

use crate::bitpack::BitPacked;
use crate::mvcc::{self, TS_INF};
use crate::table_ops::{MergeStats, TableStore};
use crate::{ColumnId, Result, RowId, Schema, StorageError, Value};

/// Read-optimized partition: per-column sorted dictionary + bit-packed
/// attribute vector; rows all committed (begin = 0) with a mutable end
/// timestamp.
#[derive(Debug, Default, Clone)]
pub struct VMain {
    /// Per-column sorted dictionaries.
    pub dicts: Vec<Vec<Value>>,
    /// Per-column packed value-id vectors.
    pub avs: Vec<BitPacked>,
    /// Per-row end timestamps.
    pub end_ts: Vec<u64>,
}

impl VMain {
    /// Rows in the partition.
    pub fn rows(&self) -> u64 {
        self.end_ts.len() as u64
    }
}

/// Write-optimized partition: per-column unsorted dictionary with a probe
/// map, plain value-id vectors, begin/end timestamps per row.
#[derive(Debug, Default, Clone)]
pub struct VDelta {
    /// Per-column append-order dictionaries.
    pub dicts: Vec<Vec<Value>>,
    /// Per-column probe maps value → value-id (transient; rebuilt on
    /// recovery).
    pub probes: Vec<HashMap<Value, u32>>,
    /// Per-column value-id vectors.
    pub avs: Vec<Vec<u32>>,
    /// Per-row begin timestamps.
    pub begin_ts: Vec<u64>,
    /// Per-row end timestamps.
    pub end_ts: Vec<u64>,
}

impl VDelta {
    fn new(ncols: usize) -> VDelta {
        VDelta {
            dicts: vec![Vec::new(); ncols],
            probes: vec![HashMap::new(); ncols],
            avs: vec![Vec::new(); ncols],
            begin_ts: Vec::new(),
            end_ts: Vec::new(),
        }
    }

    /// Rows in the partition.
    pub fn rows(&self) -> u64 {
        self.begin_ts.len() as u64
    }

    /// Intern `v` in column `c`'s dictionary, returning its value-id.
    fn intern(&mut self, c: ColumnId, v: &Value) -> u32 {
        if let Some(&id) = self.probes[c].get(v) {
            return id;
        }
        let id = self.dicts[c].len() as u32;
        self.dicts[c].push(v.clone());
        self.probes[c].insert(v.clone(), id);
        id
    }

    /// Rebuild the transient probe maps from the dictionaries (the recovery
    /// path's "transient rebuild" step).
    pub fn rebuild_probes(&mut self) {
        for (c, dict) in self.dicts.iter().enumerate() {
            let probe: HashMap<Value, u32> = dict
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), i as u32))
                .collect();
            self.probes[c] = probe;
        }
    }
}

/// A DRAM-resident main/delta table.
#[derive(Debug, Clone)]
pub struct VTable {
    schema: Schema,
    main: VMain,
    delta: VDelta,
}

impl VTable {
    /// Create an empty table.
    pub fn new(schema: Schema) -> VTable {
        let ncols = schema.len();
        VTable {
            schema,
            main: VMain {
                dicts: vec![Vec::new(); ncols],
                avs: vec![BitPacked::default(); ncols],
                end_ts: Vec::new(),
            },
            delta: VDelta::new(ncols),
        }
    }

    /// Rebuild from checkpoint parts (see the `wal` crate).
    pub fn from_parts(schema: Schema, main: VMain, mut delta: VDelta) -> VTable {
        delta.rebuild_probes();
        VTable {
            schema,
            main,
            delta,
        }
    }

    /// Borrow the main partition (checkpoint serialization).
    pub fn main(&self) -> &VMain {
        &self.main
    }

    /// Borrow the delta partition (checkpoint serialization).
    pub fn delta(&self) -> &VDelta {
        &self.delta
    }

    fn split(&self, row: RowId) -> Result<(bool, u64)> {
        let main_rows = self.main.rows();
        let total = main_rows + self.delta.rows();
        if row < main_rows {
            Ok((true, row))
        } else if row < total {
            Ok((false, row - main_rows))
        } else {
            Err(StorageError::RowOutOfRange { row, rows: total })
        }
    }

    fn check_col(&self, col: ColumnId) -> Result<()> {
        if col < self.schema.len() {
            Ok(())
        } else {
            Err(StorageError::ColumnOutOfRange {
                column: col,
                columns: self.schema.len(),
            })
        }
    }

    fn visible_filter(
        &self,
        rows: impl Iterator<Item = RowId>,
        snapshot: u64,
        tid: u64,
    ) -> Vec<RowId> {
        rows.filter(|&r| {
            // Rows come from internal iteration; an out-of-range id is a
            // bookkeeping bug we surface as invisibility, not a panic.
            let Ok((in_main, i)) = self.split(r) else {
                return false;
            };
            let (b, e) = if in_main {
                (0, self.main.end_ts[i as usize])
            } else {
                (
                    self.delta.begin_ts[i as usize],
                    self.delta.end_ts[i as usize],
                )
            };
            mvcc::visible(b, e, snapshot, tid)
        })
        .collect()
    }

    /// Ids in the sorted main dictionary of `col` equal to `value`.
    fn main_dict_eq(&self, col: ColumnId, value: &Value) -> Option<u64> {
        self.main.dicts[col]
            .binary_search(value)
            .ok()
            .map(|i| i as u64)
    }

    /// Id range `[lo, hi)` in the sorted main dictionary matching the value
    /// range.
    fn main_dict_range(&self, col: ColumnId, lo: Option<&Value>, hi: Option<&Value>) -> (u64, u64) {
        let dict = &self.main.dicts[col];
        let lo_id = match lo {
            Some(v) => dict.partition_point(|d| d < v) as u64,
            None => 0,
        };
        let hi_id = match hi {
            Some(v) => dict.partition_point(|d| d < v) as u64,
            None => dict.len() as u64,
        };
        (lo_id, hi_id)
    }
}

impl TableStore for VTable {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn row_count(&self) -> u64 {
        self.main.rows() + self.delta.rows()
    }

    fn main_rows(&self) -> u64 {
        self.main.rows()
    }

    fn insert_version(&mut self, values: &[Value], begin_marker: u64) -> Result<RowId> {
        self.schema.check_row(values)?;
        for (c, v) in values.iter().enumerate() {
            let id = self.delta.intern(c, v);
            self.delta.avs[c].push(id);
        }
        self.delta.begin_ts.push(begin_marker);
        self.delta.end_ts.push(TS_INF);
        Ok(self.main.rows() + self.delta.rows() - 1)
    }

    fn try_invalidate(&mut self, row: RowId, marker: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        let slot = if in_main {
            &mut self.main.end_ts[i as usize]
        } else {
            &mut self.delta.end_ts[i as usize]
        };
        if *slot != TS_INF {
            return Err(StorageError::WriteConflict { row });
        }
        *slot = marker;
        Ok(())
    }

    fn restore_end(&mut self, row: RowId) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        let slot = if in_main {
            &mut self.main.end_ts[i as usize]
        } else {
            &mut self.delta.end_ts[i as usize]
        };
        *slot = TS_INF;
        Ok(())
    }

    fn abort_insert(&mut self, row: RowId) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            return Err(StorageError::MainRowImmutable { row });
        }
        self.delta.begin_ts[i as usize] = mvcc::TS_ABORTED;
        Ok(())
    }

    fn commit_insert(&mut self, row: RowId, cts: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            return Err(StorageError::MainRowImmutable { row });
        }
        self.delta.begin_ts[i as usize] = cts;
        Ok(())
    }

    fn commit_invalidate(&mut self, row: RowId, cts: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            self.main.end_ts[i as usize] = cts;
        } else {
            self.delta.end_ts[i as usize] = cts;
        }
        Ok(())
    }

    fn begin_ts(&self, row: RowId) -> Result<u64> {
        let (in_main, i) = self.split(row)?;
        Ok(if in_main {
            0
        } else {
            self.delta.begin_ts[i as usize]
        })
    }

    fn end_ts(&self, row: RowId) -> Result<u64> {
        let (in_main, i) = self.split(row)?;
        Ok(if in_main {
            self.main.end_ts[i as usize]
        } else {
            self.delta.end_ts[i as usize]
        })
    }

    fn value(&self, row: RowId, col: ColumnId) -> Result<Value> {
        self.check_col(col)?;
        let (in_main, i) = self.split(row)?;
        if in_main {
            let id = self.main.avs[col].get(i);
            Ok(self.main.dicts[col][id as usize].clone())
        } else {
            let id = self.delta.avs[col][i as usize];
            Ok(self.delta.dicts[col][id as usize].clone())
        }
    }

    fn scan_visible(&self, snapshot: u64, tid: u64) -> Result<Vec<RowId>> {
        Ok(self.visible_filter(0..self.row_count(), snapshot, tid))
    }

    fn scan_eq(&self, col: ColumnId, value: &Value, snapshot: u64, tid: u64) -> Result<Vec<RowId>> {
        self.check_col(col)?;
        let mut hits = Vec::new();
        // Main: binary search the sorted dictionary, then scan the packed av.
        if let Some(target) = self.main_dict_eq(col, value) {
            let av = &self.main.avs[col];
            for i in 0..av.len() {
                if av.get(i) == target {
                    hits.push(i);
                }
            }
        }
        // Delta: probe map, then scan the id vector.
        if let Some(&target) = self.delta.probes[col].get(value) {
            let base = self.main.rows();
            for (i, &id) in self.delta.avs[col].iter().enumerate() {
                if id == target {
                    hits.push(base + i as u64);
                }
            }
        }
        Ok(self.visible_filter(hits.into_iter(), snapshot, tid))
    }

    fn scan_range(
        &self,
        col: ColumnId,
        lo: Option<&Value>,
        hi: Option<&Value>,
        snapshot: u64,
        tid: u64,
    ) -> Result<Vec<RowId>> {
        self.check_col(col)?;
        let mut hits = Vec::new();
        // Main: the sorted dictionary maps the value range to an id range.
        let (lo_id, hi_id) = self.main_dict_range(col, lo, hi);
        if lo_id < hi_id {
            let av = &self.main.avs[col];
            for i in 0..av.len() {
                let id = av.get(i);
                if id >= lo_id && id < hi_id {
                    hits.push(i);
                }
            }
        }
        // Delta: the dictionary is unsorted; precompute per-id match bits.
        let matches: Vec<bool> = self.delta.dicts[col]
            .iter()
            .map(|v| lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v < h))
            .collect();
        let base = self.main.rows();
        for (i, &id) in self.delta.avs[col].iter().enumerate() {
            if matches[id as usize] {
                hits.push(base + i as u64);
            }
        }
        Ok(self.visible_filter(hits.into_iter(), snapshot, tid))
    }

    fn merge(&mut self, snapshot: u64) -> Result<MergeStats> {
        let total = self.row_count();
        // Collect surviving rows (visible at `snapshot`; tid 0 is never a
        // live transaction id in the managers built on top).
        let mut survivors: Vec<Vec<Value>> = Vec::new();
        for row in 0..total {
            let b = self.begin_ts(row)?;
            let e = self.end_ts(row)?;
            if mvcc::is_pending(b) || mvcc::is_pending(e) {
                return Err(StorageError::Corrupt {
                    reason: "merge requires a quiesced table (pending markers found)",
                });
            }
            if mvcc::visible(b, e, snapshot, 0) {
                survivors.push(self.row_values(row)?);
            }
        }
        let ncols = self.schema.len();
        let mut new_main = VMain {
            dicts: Vec::with_capacity(ncols),
            avs: Vec::with_capacity(ncols),
            end_ts: vec![TS_INF; survivors.len()],
        };
        for c in 0..ncols {
            // Sorted, deduplicated dictionary over the surviving values.
            let mut dict: Vec<Value> = survivors.iter().map(|r| r[c].clone()).collect();
            dict.sort();
            dict.dedup();
            let ids: Vec<u64> = survivors
                .iter()
                .map(|r| {
                    dict.binary_search(&r[c])
                        .map(|i| i as u64)
                        .map_err(|_| StorageError::Corrupt {
                            reason: "merge dictionary missing a surviving value",
                        })
                })
                .collect::<Result<_>>()?;
            new_main
                .avs
                .push(BitPacked::from_ids(&ids, dict.len() as u64));
            new_main.dicts.push(dict);
        }
        let merged = survivors.len() as u64;
        self.main = new_main;
        self.delta = VDelta::new(ncols);
        Ok(MergeStats {
            rows_before: total,
            rows_merged: merged,
            rows_dropped: total - merged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::DataType;

    fn table() -> VTable {
        VTable::new(Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("s", DataType::Text),
            ColumnDef::new("x", DataType::Double),
        ]))
    }

    fn row(k: i64, s: &str, x: f64) -> Vec<Value> {
        vec![Value::Int(k), s.into(), Value::Double(x)]
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        let r = t.insert_version(&row(1, "a", 0.5), 10).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.value(r, 0).unwrap(), Value::Int(1));
        assert_eq!(t.value(r, 1).unwrap(), Value::Text("a".into()));
        assert_eq!(t.row_values(r).unwrap(), row(1, "a", 0.5));
    }

    #[test]
    fn dictionary_deduplicates() {
        let mut t = table();
        for i in 0..10 {
            t.insert_version(&row(i % 3, "dup", 1.0), 1).unwrap();
        }
        assert_eq!(t.delta().dicts[0].len(), 3);
        assert_eq!(t.delta().dicts[1].len(), 1);
    }

    #[test]
    fn visibility_with_snapshots() {
        let mut t = table();
        let r1 = t.insert_version(&row(1, "a", 0.0), 5).unwrap();
        let r2 = t.insert_version(&row(2, "b", 0.0), 8).unwrap();
        assert_eq!(t.scan_visible(5, 99).unwrap(), vec![r1]);
        assert_eq!(t.scan_visible(8, 99).unwrap(), vec![r1, r2]);
        assert_eq!(t.scan_visible(4, 99).unwrap(), Vec::<RowId>::new());
    }

    #[test]
    fn write_conflict_detection() {
        let mut t = table();
        let r = t.insert_version(&row(1, "a", 0.0), 1).unwrap();
        t.try_invalidate(r, mvcc::pending(7)).unwrap();
        assert!(matches!(
            t.try_invalidate(r, mvcc::pending(8)),
            Err(StorageError::WriteConflict { .. })
        ));
        t.restore_end(r).unwrap();
        t.try_invalidate(r, mvcc::pending(8)).unwrap();
    }

    #[test]
    fn scan_eq_hits_main_and_delta() {
        let mut t = table();
        for i in 0..6 {
            t.insert_version(&row(i % 2, "v", 0.0), 1).unwrap();
        }
        t.merge(1).unwrap();
        // Now main has 6 rows; add delta rows.
        t.insert_version(&row(0, "v", 0.0), 2).unwrap();
        let hits = t.scan_eq(0, &Value::Int(0), 5, 99).unwrap();
        assert_eq!(hits.len(), 4); // 3 in main + 1 in delta
        assert!(hits
            .iter()
            .all(|&r| t.value(r, 0).unwrap() == Value::Int(0)));
    }

    #[test]
    fn scan_range_semantics() {
        let mut t = table();
        for i in 0..10 {
            t.insert_version(&row(i, "v", 0.0), 1).unwrap();
        }
        t.merge(1).unwrap();
        t.insert_version(&row(10, "v", 0.0), 2).unwrap();
        let hits = t
            .scan_range(0, Some(&Value::Int(3)), Some(&Value::Int(8)), 5, 99)
            .unwrap();
        let mut ks: Vec<i64> = hits
            .iter()
            .map(|&r| t.value(r, 0).unwrap().as_int().unwrap())
            .collect();
        ks.sort();
        assert_eq!(ks, vec![3, 4, 5, 6, 7]);
        // Open-ended.
        let hits = t.scan_range(0, Some(&Value::Int(9)), None, 5, 99).unwrap();
        assert_eq!(hits.len(), 2); // 9 and 10
    }

    #[test]
    fn merge_drops_dead_versions() {
        let mut t = table();
        let r1 = t.insert_version(&row(1, "a", 0.0), 1).unwrap();
        let _r2 = t.insert_version(&row(2, "b", 0.0), 2).unwrap();
        // Invalidate r1 at ts 3.
        t.try_invalidate(r1, mvcc::pending(9)).unwrap();
        t.commit_invalidate(r1, 3).unwrap();
        let stats = t.merge(10).unwrap();
        assert_eq!(stats.rows_before, 2);
        assert_eq!(stats.rows_merged, 1);
        assert_eq!(stats.rows_dropped, 1);
        assert_eq!(t.main_rows(), 1);
        assert_eq!(t.delta().rows(), 0);
        let vis = t.scan_visible(10, 99).unwrap();
        assert_eq!(vis.len(), 1);
        assert_eq!(t.value(vis[0], 0).unwrap(), Value::Int(2));
    }

    #[test]
    fn merge_rejects_pending_rows() {
        let mut t = table();
        t.insert_version(&row(1, "a", 0.0), mvcc::pending(4))
            .unwrap();
        assert!(t.merge(10).is_err());
    }

    #[test]
    fn merge_builds_sorted_dict_and_packed_av() {
        let mut t = table();
        for k in [5i64, 1, 9, 1, 5] {
            t.insert_version(&row(k, "z", 0.0), 1).unwrap();
        }
        t.merge(2).unwrap();
        assert_eq!(
            t.main().dicts[0],
            vec![Value::Int(1), Value::Int(5), Value::Int(9)]
        );
        assert_eq!(t.main().avs[0].width(), 2);
        let vals: Vec<i64> = (0..5)
            .map(|r| t.value(r, 0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![5, 1, 9, 1, 5]);
    }

    #[test]
    fn update_chain_versions() {
        let mut t = table();
        let r1 = t.insert_version(&row(1, "old", 0.0), 1).unwrap();
        // "Update": invalidate old version, insert new one, commit at ts 5.
        t.try_invalidate(r1, mvcc::pending(2)).unwrap();
        let r2 = t
            .insert_version(&row(1, "new", 0.0), mvcc::pending(2))
            .unwrap();
        t.commit_invalidate(r1, 5).unwrap();
        t.commit_insert(r2, 5).unwrap();
        // Snapshot 4 sees the old version; snapshot 5 the new one.
        assert_eq!(t.scan_visible(4, 99).unwrap(), vec![r1]);
        assert_eq!(t.scan_visible(5, 99).unwrap(), vec![r2]);
    }

    #[test]
    fn aborted_insert_hidden() {
        let mut t = table();
        let r = t
            .insert_version(&row(1, "a", 0.0), mvcc::pending(2))
            .unwrap();
        t.abort_insert(r).unwrap();
        assert!(t.scan_visible(100, 99).unwrap().is_empty());
    }

    #[test]
    fn main_row_begin_immutable() {
        let mut t = table();
        t.insert_version(&row(1, "a", 0.0), 1).unwrap();
        t.merge(1).unwrap();
        assert!(matches!(
            t.commit_insert(0, 9),
            Err(StorageError::MainRowImmutable { .. })
        ));
        assert!(matches!(
            t.abort_insert(0),
            Err(StorageError::MainRowImmutable { .. })
        ));
    }

    #[test]
    fn bad_row_and_column_errors() {
        let mut t = table();
        assert!(matches!(
            t.value(0, 0),
            Err(StorageError::RowOutOfRange { .. })
        ));
        t.insert_version(&row(1, "a", 0.0), 1).unwrap();
        assert!(matches!(
            t.value(0, 5),
            Err(StorageError::ColumnOutOfRange { .. })
        ));
        assert!(matches!(
            t.insert_version(&[Value::Int(1)], 1),
            Err(StorageError::ArityMismatch { .. })
        ));
    }
}
