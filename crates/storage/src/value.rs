//! Column value types.

use std::cmp::Ordering;
use std::fmt;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Double,
    /// UTF-8 string.
    Text,
}

impl DataType {
    /// Stable on-media tag used by the NVM table layout and the WAL.
    pub fn tag(self) -> u8 {
        match self {
            DataType::Int => 0,
            DataType::Double => 1,
            DataType::Text => 2,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Option<DataType> {
        match tag {
            0 => Some(DataType::Int),
            1 => Some(DataType::Double),
            2 => Some(DataType::Text),
            _ => None,
        }
    }
}

/// A single column value.
///
/// `Value` implements a **total order** (doubles via `total_cmp`, values of
/// different types ordered by type tag) so it can key sorted dictionaries
/// and B-tree-style indexes; `Eq`/`Hash` follow the same equivalence
/// (`NaN == NaN`, `-0.0 != +0.0` per bit pattern).
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// The value's dynamic type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Double(_) => DataType::Double,
            Value::Text(_) => DataType::Text,
        }
    }

    /// For fixed-width types, the value encoded as a raw 64-bit word (the
    /// NVM dictionary entry representation). `None` for text.
    pub fn as_word(&self) -> Option<u64> {
        match self {
            Value::Int(i) => Some(*i as u64),
            Value::Double(d) => Some(d.to_bits()),
            Value::Text(_) => None,
        }
    }

    /// Decode a fixed-width dictionary word back into a value of type `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is [`DataType::Text`]; text entries are stored as heap
    /// offsets, not words.
    pub fn from_word(dt: DataType, word: u64) -> Value {
        match dt {
            DataType::Int => Value::Int(word as i64),
            DataType::Double => Value::Double(f64::from_bits(word)),
            DataType::Text => panic!("text values are not word-encoded"),
        }
    }

    /// Borrow the string if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract the integer if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract the float if this is a double value.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => a.data_type().tag().cmp(&b.data_type().tag()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Text(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn word_roundtrip_int_double() {
        for v in [Value::Int(-5), Value::Int(i64::MAX), Value::Double(-1.5)] {
            let w = v.as_word().unwrap();
            assert_eq!(Value::from_word(v.data_type(), w), v);
        }
        assert_eq!(Value::Text("x".into()).as_word(), None);
    }

    #[test]
    fn total_order_on_doubles() {
        let mut vals = [
            Value::Double(f64::NAN),
            Value::Double(1.0),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(-0.0),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Double(f64::NEG_INFINITY));
        // NaN sorts last under total_cmp (positive NaN).
        assert!(matches!(vals[3], Value::Double(d) if d.is_nan()));
    }

    #[test]
    fn nan_equals_itself_for_dict_keys() {
        let mut m = HashMap::new();
        m.insert(Value::Double(f64::NAN), 1u32);
        assert_eq!(m.get(&Value::Double(f64::NAN)), Some(&1));
    }

    #[test]
    fn cross_type_order_is_by_tag() {
        assert!(Value::Int(999) < Value::Double(0.0));
        assert!(Value::Double(9e9) < Value::Text("".into()));
    }

    #[test]
    fn datatype_tag_roundtrip() {
        for dt in [DataType::Int, DataType::Double, DataType::Text] {
            assert_eq!(DataType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DataType::from_tag(9), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::Text("a".into()));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_double(), None);
        assert_eq!(Value::Double(0.5).as_double(), Some(0.5));
        assert_eq!(Value::Text("t".into()).as_text(), Some("t"));
    }
}
