//! Table schemas.

use crate::{ColumnId, DataType, Result, StorageError, Value};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within a schema by convention; not enforced).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Build a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty — a table needs at least one column.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        assert!(!columns.is_empty(), "schema must have at least one column");
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Always false (schemas are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Definition of column `c`.
    pub fn column(&self, c: ColumnId) -> Result<&ColumnDef> {
        self.columns.get(c).ok_or(StorageError::ColumnOutOfRange {
            column: c,
            columns: self.columns.len(),
        })
    }

    /// Index of the column named `name`.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a full row against the schema.
    pub fn check_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                got: values.len(),
                expected: self.columns.len(),
            });
        }
        for (c, (v, def)) in values.iter().zip(&self.columns).enumerate() {
            if v.data_type() != def.dtype {
                return Err(StorageError::TypeMismatch {
                    column: c,
                    expected: def.dtype,
                });
            }
        }
        Ok(())
    }

    /// Serialize to a compact byte image (used by the NVM table root and
    /// the checkpoint format): `[ncols: u32] ( [tag: u8] [name_len: u32]
    /// [name bytes] )*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * self.columns.len());
        out.extend_from_slice(&(self.columns.len() as u32).to_le_bytes());
        for c in &self.columns {
            out.push(c.dtype.tag());
            out.extend_from_slice(&(c.name.len() as u32).to_le_bytes());
            out.extend_from_slice(c.name.as_bytes());
        }
        out
    }

    /// Inverse of [`Schema::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Schema> {
        let corrupt = |reason| StorageError::Corrupt { reason };
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = bytes
                .get(*pos..*pos + n)
                .ok_or(corrupt("schema image truncated"))?;
            *pos += n;
            Ok(s)
        };
        let ncols = u32::from_le_bytes(
            take(&mut pos, 4)?
                .try_into()
                .map_err(|_| corrupt("schema image truncated"))?,
        ) as usize;
        if ncols == 0 || ncols > 4096 {
            return Err(corrupt("implausible column count"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let tag = take(&mut pos, 1)?[0];
            let dtype = DataType::from_tag(tag).ok_or(corrupt("unknown type tag"))?;
            let nlen = u32::from_le_bytes(
                take(&mut pos, 4)?
                    .try_into()
                    .map_err(|_| corrupt("schema image truncated"))?,
            ) as usize;
            let name = std::str::from_utf8(take(&mut pos, nlen)?)
                .map_err(|_| corrupt("column name not utf-8"))?
                .to_owned();
            columns.push(ColumnDef { name, dtype });
        }
        Ok(Schema { columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("balance", DataType::Double),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.column_id("name"), Some(1));
        assert_eq!(s.column_id("missing"), None);
        assert_eq!(s.column(2).unwrap().dtype, DataType::Double);
        assert!(s.column(3).is_err());
    }

    #[test]
    fn row_validation() {
        let s = sample();
        s.check_row(&[Value::Int(1), "a".into(), Value::Double(0.0)])
            .unwrap();
        assert!(matches!(
            s.check_row(&[Value::Int(1), "a".into()]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Int(1), Value::Int(2), Value::Double(0.0)]),
            Err(StorageError::TypeMismatch { column: 1, .. })
        ));
    }

    #[test]
    fn bytes_roundtrip() {
        let s = sample();
        assert_eq!(Schema::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn truncated_bytes_rejected() {
        let s = sample();
        let b = s.to_bytes();
        assert!(Schema::from_bytes(&b[..b.len() - 2]).is_err());
        assert!(Schema::from_bytes(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_schema_panics() {
        let _ = Schema::new(vec![]);
    }
}
