//! Storage-layer error type.

use std::fmt;

use crate::{ColumnId, DataType, RowId};

/// Errors raised by table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Underlying NVM substrate failure.
    Nvm(nvm::NvmError),
    /// A value did not match the column's declared type.
    TypeMismatch {
        /// Column the value was destined for.
        column: ColumnId,
        /// Declared type.
        expected: DataType,
    },
    /// A row operation carried the wrong number of values.
    ArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of columns in the schema.
        expected: usize,
    },
    /// Row id outside the table.
    RowOutOfRange {
        /// Offending row id.
        row: RowId,
        /// Current number of rows.
        rows: u64,
    },
    /// Column id outside the schema.
    ColumnOutOfRange {
        /// Offending column id.
        column: ColumnId,
        /// Number of columns.
        columns: usize,
    },
    /// Write-write conflict: the row version is already invalidated (or
    /// being invalidated) by another transaction. First committer wins.
    WriteConflict {
        /// The contested row.
        row: RowId,
    },
    /// Attempt to mutate a main-partition row in a way only the delta
    /// supports (main rows are immutable except for invalidation).
    MainRowImmutable {
        /// The row.
        row: RowId,
    },
    /// The persistent table image failed validation on open.
    Corrupt {
        /// Description of what failed.
        reason: &'static str,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Nvm(e) => write!(f, "nvm: {e}"),
            StorageError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch in column {column}: expected {expected:?}")
            }
            StorageError::ArityMismatch { got, expected } => {
                write!(
                    f,
                    "row arity mismatch: got {got} values, schema has {expected}"
                )
            }
            StorageError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (table has {rows} rows)")
            }
            StorageError::ColumnOutOfRange { column, columns } => {
                write!(f, "column {column} out of range (schema has {columns})")
            }
            StorageError::WriteConflict { row } => {
                write!(f, "write-write conflict on row {row}")
            }
            StorageError::MainRowImmutable { row } => {
                write!(f, "main-partition row {row} is immutable")
            }
            StorageError::Corrupt { reason } => write!(f, "corrupt table image: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nvm::NvmError> for StorageError {
    fn from(e: nvm::NvmError) -> Self {
        StorageError::Nvm(e)
    }
}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
