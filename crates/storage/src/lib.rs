#![warn(missing_docs)]

//! Columnar main/delta storage engine with dictionary encoding and MVCC,
//! in two variants sharing one semantics:
//!
//! * [`VTable`] — a DRAM-resident table, the substrate of the log-based
//!   baseline (durability comes from the `wal` crate).
//! * [`nv::NvTable`] — the Hyrise-NV table: all primary data (dictionaries,
//!   attribute vectors, MVCC timestamp arrays) lives on simulated NVM and is
//!   updated with explicit flush/fence ordering, so a restart only re-opens
//!   the region.
//!
//! Both implement [`TableStore`], which is what the transaction manager and
//! the engine program against.
//!
//! ## Architecture (after Hyrise)
//!
//! A table has a read-optimized **main** partition — per-column *sorted*
//! dictionary plus a bit-packed attribute vector of value-ids — and a
//! write-optimized **delta** partition — per-column *unsorted* append-only
//! dictionary with a transient hash probe map, plus a plain `u32` value-id
//! vector. Inserts/updates/deletes go to the delta; a **merge** folds the
//! delta into a fresh main. Row versioning is MVCC: each row carries a
//! begin and an end commit timestamp; see [`mvcc`].

pub mod bitpack;
mod error;
pub mod mvcc;
pub mod nv;
mod schema;
pub mod table_ops;
mod value;
mod vtable;

pub use error::{Result, StorageError};
pub use schema::{ColumnDef, Schema};
pub use table_ops::{MergeStats, MvccCheck, ScanResult, TableStore};
pub use value::{DataType, Value};
pub use vtable::{VDelta, VMain, VTable};

/// Row identifier: global row index within one table — main rows first
/// (`0..main_rows`), then delta rows. Row ids are re-assigned by a merge.
pub type RowId = u64;

/// Column index within a table schema.
pub type ColumnId = usize;
