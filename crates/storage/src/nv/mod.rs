//! NVM-resident storage structures — the Hyrise-NV table.
//!
//! All primary data lives on the persistent heap: per-column dictionaries
//! and attribute vectors, MVCC begin/end timestamp arrays, and the
//! descriptor blocks tying them together. Updates follow explicit
//! persist-then-publish ordering so that a crash at any point leaves a
//! recoverable image; the only DRAM-resident ("transient") state is the
//! delta dictionaries' probe hash maps and cached row counters, which
//! [`NvTable::open`] rebuilds — that rebuild is the *entire* data-dependent
//! part of a restart, which is why recovery time is independent of the main
//! partition's size.

mod table;
mod text;

pub use table::{MediaExtent, MergePlan, NvTable, TABLE_ROOT_SIZE};
pub use text::{read_string, store_string, string_block_size};
