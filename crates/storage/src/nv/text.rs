//! Variable-length string storage on the persistent heap.
//!
//! A string is stored as one heap block: `[len: u32][utf-8 bytes]`. Blocks
//! are immutable once written; dictionary entries reference them by payload
//! offset. Blocks become reachable when the dictionary entry that references
//! them is published; a crash between block activation and entry publish
//! orphans the block until the next merge rewrites the column (documented
//! leak window, matching nvm_malloc-based engines that defer such garbage to
//! compaction).

use nvm::NvmHeap;

use crate::{Result, StorageError};

/// Byte size of the block storing `s`.
pub fn string_block_size(s: &str) -> u64 {
    4 + s.len() as u64
}

/// Store `s` durably on the heap, returning the payload offset.
pub fn store_string(heap: &NvmHeap, s: &str) -> Result<u64> {
    let off = heap.alloc(string_block_size(s))?;
    let region = heap.region();
    region.write_pod(off, &(s.len() as u32))?;
    region.write_bytes(off + 4, s.as_bytes())?;
    region.persist(off, string_block_size(s))?;
    Ok(off)
}

/// Read the string stored at payload offset `off`.
pub fn read_string(heap: &NvmHeap, off: u64) -> Result<String> {
    let region = heap.region();
    let len: u32 = region.read_pod(off)?;
    if len > 1 << 24 {
        return Err(StorageError::Corrupt {
            reason: "implausible string length",
        });
    }
    let bytes = region.with_slice(off + 4, len as u64, |b| b.to_vec())?;
    String::from_utf8(bytes).map_err(|_| StorageError::Corrupt {
        reason: "string block not utf-8",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::{CrashPolicy, LatencyModel, NvmRegion};
    use std::sync::Arc;

    fn heap() -> NvmHeap {
        NvmHeap::format(Arc::new(NvmRegion::new(1 << 20, LatencyModel::zero()))).unwrap()
    }

    #[test]
    fn roundtrip_including_empty_and_unicode() {
        let h = heap();
        for s in ["", "hello", "größer-als-ascii ✓", &"x".repeat(1000)] {
            let off = store_string(&h, s).unwrap();
            assert_eq!(read_string(&h, off).unwrap(), s);
        }
    }

    #[test]
    fn strings_survive_crash() {
        let h = heap();
        let off = store_string(&h, "durable").unwrap();
        h.region().crash(CrashPolicy::DropUnflushed);
        assert_eq!(read_string(&h, off).unwrap(), "durable");
    }
}
