//! The NVM-resident main/delta table.
//!
//! ## Persistent layout
//!
//! ```text
//! TableRoot   (24 B)  : schema_ptr | pair_ptr | reserved
//! PairBlock   (16 B)  : delta_ptr | main_ptr (0 = no main)
//! DeltaDesc           : row_count                          (publish point)
//!                       begin  PSlab<u64> header
//!                       end    PSlab<u64> header
//!                       per column: dict PVec<u64> header + av PSlab<u32> header
//! MainDesc            : row_count | end_ptr
//!                       per column: dict_ptr | dict_len | av_ptr | av_words |
//!                                   width | blob_ptr | blob_len | checksum
//! ```
//!
//! The per-column checksum is an FNV-1a fingerprint over the column's
//! immutable media — the descriptor words themselves, the sorted dictionary,
//! the string blob, and the packed attribute vector — sealed once at merge
//! time and verified by [`NvTable::verify_media`]. The *mutable* words (MVCC
//! begin/end timestamps, the delta row counter) cannot carry content
//! checksums without destroying single-word commit atomicity; they get
//! plausibility checks instead (a timestamp must be pending, aborted,
//! infinity, or ≤ the published last commit timestamp). A media fault that
//! forges a plausible timestamp in a mutable word is therefore detected only
//! indirectly — the documented residual gap of this fault model.
//!
//! Dictionary entry words hold the value directly for `Int`/`Double` and a
//! string-block offset for `Text`.
//!
//! ## Ordering protocols
//!
//! * **Insert**: intern values (dictionary appends are independently
//!   crash-atomic), write the row's attribute-vector slots and MVCC words,
//!   flush them all, fence, *then* durably publish `row_count`. A crash
//!   before the publish leaves the row nonexistent; after it, the row exists
//!   but is gated by its (pending) begin timestamp.
//! * **Commit/abort**: single-word in-place persists of begin/end
//!   timestamps; the global commit-timestamp publish in the `txn` crate
//!   orders them.
//! * **Merge**: builds a complete new main + empty delta in fresh
//!   allocations, then swaps one pointer (the pair block) via the
//!   allocator's crash-safe replace step, then frees the old tree. A crash
//!   mid-free leaks blocks until the next merge (documented; compaction
//!   reclaims them in real engines).

use std::collections::HashMap;

use nvm::{NvmHeap, NvmRegion, PArray, PSlab, PVec, PSLAB_HEADER, PVEC_HEADER};

use crate::bitpack;
use crate::mvcc::{self, TS_INF};
use crate::nv::text::read_string;
use crate::table_ops::{MergeStats, TableStore};
use crate::{ColumnId, DataType, Result, RowId, Schema, StorageError, Value};

/// Byte size of the table root block.
pub const TABLE_ROOT_SIZE: u64 = 24;

const ROOT_SCHEMA: u64 = 0;
const ROOT_PAIR: u64 = 8;

const PAIR_SIZE: u64 = 16;
const PAIR_DELTA: u64 = 0;
const PAIR_MAIN: u64 = 8;

const DD_ROWS: u64 = 0;
const DD_BEGIN: u64 = 8;
const DD_END: u64 = DD_BEGIN + PSLAB_HEADER;
const DD_COLS: u64 = DD_END + PSLAB_HEADER;
const DD_COL_STRIDE: u64 = PVEC_HEADER + PSLAB_HEADER + PVEC_HEADER + 8; // dict + av + text blob + pad

const MD_ROWS: u64 = 0;
const MD_END: u64 = 8;
const MD_COLS: u64 = 16;
const MD_COL_STRIDE: u64 = 64;
/// Offset of the per-column checksum within a main column descriptor; the
/// checksum covers the `MC_SUM_COVERS` descriptor bytes before it plus the
/// dictionary, blob, and attribute-vector payloads.
const MC_SUM: u64 = 56;
const MC_SUM_COVERS: u64 = 56;

fn delta_desc_size(ncols: usize) -> u64 {
    DD_COLS + ncols as u64 * DD_COL_STRIDE
}

fn main_desc_size(ncols: usize) -> u64 {
    MD_COLS + ncols as u64 * MD_COL_STRIDE
}

struct DeltaCol {
    dict: PVec<u64>,
    av: PSlab<u32>,
    /// Per-column string blob: text dictionary entries are local offsets
    /// into this byte run (one block per column, not one per string — the
    /// contiguous layout Hyrise uses, and what keeps the allocator's
    /// recovery scan metadata-bound).
    blob: PVec<u8>,
}

struct DeltaHandle {
    desc: u64,
    /// Cached copy of the durable row counter.
    rows: u64,
    begin: PSlab<u64>,
    end: PSlab<u64>,
    cols: Vec<DeltaCol>,
    /// Transient probe maps (value → value-id), rebuilt on open.
    probes: Vec<HashMap<Value, u32>>,
}

struct MainCol {
    dict_ptr: u64,
    dict_len: u64,
    /// Packed attribute vector as raw words.
    av: PArray<u64>,
    width: u32,
    /// Text blob payload offset (0 for non-text columns); dictionary
    /// entries are local offsets into it.
    blob_ptr: u64,
    /// Byte length of the text blob (0 for non-text columns).
    blob_len: u64,
}

struct MainHandle {
    rows: u64,
    end: PArray<u64>,
    cols: Vec<MainCol>,
}

/// An NVM-resident table. The struct itself is the *volatile handle*: cheap
/// to rebuild, holding cached offsets, row counters, and the transient probe
/// maps. All data it points at lives on the heap.
pub struct NvTable {
    heap: NvmHeap,
    root: u64,
    schema: Schema,
    delta: DeltaHandle,
    main: Option<MainHandle>,
}

impl NvTable {
    /// Create a fresh table on `heap`. Returns the handle; the root block
    /// offset is available via [`NvTable::root_offset`] for cataloguing.
    ///
    /// Creation is not crash-atomic as a whole (a crash mid-create of a
    /// fresh database is resolved by re-creating it); individual blocks use
    /// the normal allocation protocol.
    pub fn create(heap: &NvmHeap, schema: Schema) -> Result<NvTable> {
        let region = heap.region().clone();
        let ncols = schema.len();

        // Schema block: [len: u64][bytes].
        let schema_bytes = schema.to_bytes();
        let schema_ptr = heap.alloc(8 + schema_bytes.len() as u64)?;
        region.write_pod(schema_ptr, &(schema_bytes.len() as u64))?;
        region.write_bytes(schema_ptr + 8, &schema_bytes)?;
        region.persist(schema_ptr, 8 + schema_bytes.len() as u64)?;

        let delta_desc = Self::create_delta_desc(heap, ncols)?;

        let pair = heap.alloc(PAIR_SIZE)?;
        region.write_pod(pair + PAIR_DELTA, &delta_desc)?;
        region.write_pod(pair + PAIR_MAIN, &0u64)?;
        region.persist(pair, PAIR_SIZE)?;

        let root = heap.alloc(TABLE_ROOT_SIZE)?;
        region.write_pod(root + ROOT_SCHEMA, &schema_ptr)?;
        region.write_pod(root + ROOT_PAIR, &pair)?;
        region.write_pod(root + 16, &0u64)?;
        region.persist(root, TABLE_ROOT_SIZE)?;

        Self::open(heap, root)
    }

    fn create_delta_desc(heap: &NvmHeap, ncols: usize) -> Result<u64> {
        let region = heap.region();
        let desc = heap.alloc(delta_desc_size(ncols))?;
        // Zero the descriptor before initialising it: a recycled block may
        // hold stale pointers, and the exhaustion unwind below walks the
        // descriptor to free whatever a partial init managed to allocate.
        region.write_bytes(desc, &vec![0u8; delta_desc_size(ncols) as usize])?;
        let init = (|| -> Result<()> {
            region.write_pod(desc + DD_ROWS, &0u64)?;
            region.persist(desc + DD_ROWS, 8)?;
            PSlab::<u64>::create(heap, desc + DD_BEGIN, 16)?;
            PSlab::<u64>::create(heap, desc + DD_END, 16)?;
            for c in 0..ncols as u64 {
                let base = desc + DD_COLS + c * DD_COL_STRIDE;
                PVec::<u64>::create(heap, base, 8)?;
                PSlab::<u32>::create(heap, base + PVEC_HEADER, 16)?;
                PVec::<u8>::create(heap, base + PVEC_HEADER + PSLAB_HEADER, 64)?;
            }
            Ok(())
        })();
        match init {
            Ok(()) => Ok(desc),
            Err(e) => {
                let _ = Self::free_delta_tree_in(heap, desc, ncols);
                Err(e)
            }
        }
    }

    /// Re-attach to an existing table given its root block offset. Runs the
    /// transient-rebuild step (probe maps, cached counters) — the only
    /// data-dependent work on the Hyrise-NV restart path.
    pub fn open(heap: &NvmHeap, root: u64) -> Result<NvTable> {
        let region = heap.region().clone();
        let schema_ptr: u64 = region.read_pod(root + ROOT_SCHEMA)?;
        let schema_len: u64 = region.read_pod(schema_ptr)?;
        if schema_len > 1 << 20 {
            return Err(StorageError::Corrupt {
                reason: "implausible schema length",
            });
        }
        let schema_bytes = region.with_slice(schema_ptr + 8, schema_len, |b| b.to_vec())?;
        let schema = Schema::from_bytes(&schema_bytes)?;
        let ncols = schema.len();

        let pair: u64 = region.read_pod(root + ROOT_PAIR)?;
        let delta_desc: u64 = region.read_pod(pair + PAIR_DELTA)?;
        let main_desc: u64 = region.read_pod(pair + PAIR_MAIN)?;

        // pmlint: observe(delta-rows)
        let rows: u64 = region.load_u64_acquire(delta_desc + DD_ROWS)?;
        let mut cols = Vec::with_capacity(ncols);
        for c in 0..ncols as u64 {
            let base = delta_desc + DD_COLS + c * DD_COL_STRIDE;
            cols.push(DeltaCol {
                dict: PVec::open(base),
                av: PSlab::open(base + PVEC_HEADER),
                blob: PVec::open(base + PVEC_HEADER + PSLAB_HEADER),
            });
        }
        let mut delta = DeltaHandle {
            desc: delta_desc,
            rows,
            begin: PSlab::open(delta_desc + DD_BEGIN),
            end: PSlab::open(delta_desc + DD_END),
            cols,
            probes: vec![HashMap::new(); ncols],
        };
        // Transient rebuild: probe maps from the persistent dictionaries.
        // Bulk-reads the dictionary words and the whole string blob once,
        // then decodes locally — one lock acquisition per column instead of
        // two per entry.
        for c in 0..ncols {
            let dtype = schema.column(c)?.dtype;
            let words = delta.cols[c].dict.to_vec(&region)?;
            let blob_bytes = if dtype == DataType::Text {
                delta.cols[c].blob.to_vec(&region)?
            } else {
                Vec::new()
            };
            let mut probe = HashMap::with_capacity(words.len());
            for (id, w) in words.iter().enumerate() {
                let v = match dtype {
                    DataType::Int => Value::Int(*w as i64),
                    DataType::Double => Value::Double(f64::from_bits(*w)),
                    DataType::Text => {
                        let at = *w as usize;
                        let n = u32::from_le_bytes(
                            blob_bytes
                                .get(at..at + 4)
                                .ok_or(StorageError::Corrupt {
                                    reason: "dict entry beyond blob",
                                })?
                                .try_into()
                                .map_err(|_| StorageError::Corrupt {
                                    reason: "dict entry beyond blob",
                                })?,
                        ) as usize;
                        let bytes =
                            blob_bytes
                                .get(at + 4..at + 4 + n)
                                .ok_or(StorageError::Corrupt {
                                    reason: "string run beyond blob",
                                })?;
                        Value::Text(
                            std::str::from_utf8(bytes)
                                .map_err(|_| StorageError::Corrupt {
                                    reason: "delta blob string not utf-8",
                                })?
                                .to_owned(),
                        )
                    }
                };
                probe.insert(v, id as u32);
            }
            delta.probes[c] = probe;
        }

        let main = if main_desc != 0 {
            Some(Self::open_main(&region, main_desc, ncols)?)
        } else {
            None
        };

        Ok(NvTable {
            heap: heap.clone(),
            root,
            schema,
            delta,
            main,
        })
    }

    fn open_main(region: &NvmRegion, desc: u64, ncols: usize) -> Result<MainHandle> {
        let rows: u64 = region.read_pod(desc + MD_ROWS)?;
        let end_ptr: u64 = region.read_pod(desc + MD_END)?;
        let mut cols = Vec::with_capacity(ncols);
        for c in 0..ncols as u64 {
            let base = desc + MD_COLS + c * MD_COL_STRIDE;
            let dict_ptr: u64 = region.read_pod(base)?;
            let dict_len: u64 = region.read_pod(base + 8)?;
            let av_ptr: u64 = region.read_pod(base + 16)?;
            let av_words: u64 = region.read_pod(base + 24)?;
            let width: u64 = region.read_pod(base + 32)?;
            let blob_ptr: u64 = region.read_pod(base + 40)?;
            let blob_len: u64 = region.read_pod(base + 48)?;
            cols.push(MainCol {
                dict_ptr,
                dict_len,
                av: PArray::at(av_ptr, av_words),
                width: width as u32,
                blob_ptr,
                blob_len,
            });
        }
        Ok(MainHandle {
            rows,
            end: PArray::at(end_ptr, rows),
            cols,
        })
    }

    /// Offset of the table's root block (for catalogues and re-opening).
    pub fn root_offset(&self) -> u64 {
        self.root
    }

    /// The heap this table lives on.
    pub fn heap(&self) -> &NvmHeap {
        &self.heap
    }

    /// `(offset, len)` of the delta row counter — the publish word of the
    /// `delta-append` persist-order protocol (label `delta-rows`).
    pub fn rows_publish_extent(&self) -> (u64, u64) {
        (self.delta.desc + DD_ROWS, 8)
    }

    /// `(offset, len)` of the root's descriptor-pair pointer — the publish
    /// word of the `merge-publish` protocol (label `table-pair`).
    pub fn pair_publish_extent(&self) -> (u64, u64) {
        (self.root + ROOT_PAIR, 8)
    }

    fn region(&self) -> &NvmRegion {
        self.heap.region()
    }

    fn main_rows_(&self) -> u64 {
        self.main.as_ref().map_or(0, |m| m.rows)
    }

    /// The main handle when a row split resolved to the main partition; a
    /// missing handle then means the descriptors contradict each other
    /// (damaged media), not a caller bug — so it is a typed error.
    fn main_ref(&self) -> Result<&MainHandle> {
        self.main.as_ref().ok_or(StorageError::Corrupt {
            reason: "row maps to the main partition but no main descriptor exists",
        })
    }

    fn split(&self, row: RowId) -> Result<(bool, u64)> {
        let main_rows = self.main_rows_();
        let total = main_rows + self.delta.rows;
        if row < main_rows {
            Ok((true, row))
        } else if row < total {
            Ok((false, row - main_rows))
        } else {
            Err(StorageError::RowOutOfRange { row, rows: total })
        }
    }

    fn check_col(&self, col: ColumnId) -> Result<()> {
        if col < self.schema.len() {
            Ok(())
        } else {
            Err(StorageError::ColumnOutOfRange {
                column: col,
                columns: self.schema.len(),
            })
        }
    }

    /// Intern `v` into the delta dictionary of column `c`.
    fn intern(&mut self, c: ColumnId, v: &Value) -> Result<u32> {
        if let Some(&id) = self.delta.probes[c].get(v) {
            return Ok(id);
        }
        let word = match v {
            Value::Text(s) => {
                let mut run = Vec::with_capacity(4 + s.len());
                run.extend_from_slice(&(s.len() as u32).to_le_bytes());
                run.extend_from_slice(s.as_bytes());
                self.delta.cols[c].blob.append_bytes(&self.heap, &run)?
            }
            other => other.as_word().ok_or(StorageError::Corrupt {
                reason: "non-text value has no word encoding",
            })?,
        };
        let id = self.delta.cols[c].dict.push(&self.heap, &word)? as u32;
        self.delta.probes[c].insert(v.clone(), id);
        Ok(id)
    }

    fn delta_dict_value(&self, c: ColumnId, id: u32) -> Result<Value> {
        let word = self.delta.cols[c].dict.get(self.region(), id as u64)?;
        decode_delta_entry(
            self.region(),
            self.schema.column(c)?.dtype,
            &self.delta.cols[c].blob,
            word,
        )
    }

    fn main_dict_value(&self, m: &MainHandle, c: ColumnId, id: u64) -> Result<Value> {
        let word: u64 = self.region().read_pod(m.cols[c].dict_ptr + id * 8)?;
        match self.schema.column(c)?.dtype {
            DataType::Text => Ok(Value::Text(
                read_string(&self.heap, m.cols[c].blob_ptr + word)?.to_string(),
            )),
            DataType::Int => Ok(Value::Int(word as i64)),
            DataType::Double => Ok(Value::Double(f64::from_bits(word))),
        }
    }

    /// Binary search the sorted main dictionary of column `c`; returns
    /// `Ok(id)` on a hit, `Err(insertion_point)` otherwise.
    fn main_dict_search(
        &self,
        m: &MainHandle,
        c: ColumnId,
        v: &Value,
    ) -> Result<std::result::Result<u64, u64>> {
        let mut lo = 0u64;
        let mut hi = m.cols[c].dict_len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let dv = self.main_dict_value(m, c, mid)?;
            match dv.cmp(v) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Equal => return Ok(Ok(mid)),
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        Ok(Err(lo))
    }

    /// Lower bound (first id whose value is >= v) in the sorted main dict.
    fn main_dict_lower_bound(&self, m: &MainHandle, c: ColumnId, v: &Value) -> Result<u64> {
        Ok(match self.main_dict_search(m, c, v)? {
            Ok(id) => id,
            Err(ip) => ip,
        })
    }

    fn main_av_ids(&self, m: &MainHandle, c: ColumnId) -> Result<Vec<u64>> {
        let words = m.cols[c].av.to_vec(self.region())?;
        let width = m.cols[c].width;
        self.region().charge_read(m.cols[c].av.byte_len());
        Ok((0..m.rows)
            .map(|i| bitpack::unpack_at(&words, width, i))
            .collect())
    }

    fn delta_av_ids(&self, c: ColumnId) -> Result<Vec<u32>> {
        Ok(self.delta.cols[c]
            .av
            .prefix(self.region(), self.delta.rows)?)
    }

    fn main_end_vec(&self) -> Result<Vec<u64>> {
        match &self.main {
            Some(m) => Ok(m.end.to_vec(self.region())?),
            None => Ok(Vec::new()),
        }
    }

    fn delta_begin_vec(&self) -> Result<Vec<u64>> {
        Ok(self.delta.begin.prefix(self.region(), self.delta.rows)?)
    }

    fn delta_end_vec(&self) -> Result<Vec<u64>> {
        Ok(self.delta.end.prefix(self.region(), self.delta.rows)?)
    }

    fn visible_filter(
        &self,
        candidates: impl Iterator<Item = RowId>,
        snapshot: u64,
        tid: u64,
    ) -> Result<Vec<RowId>> {
        let main_rows = self.main_rows_();
        let m_end = self.main_end_vec()?;
        let d_begin = self.delta_begin_vec()?;
        let d_end = self.delta_end_vec()?;
        Ok(candidates
            .filter(|&r| {
                if r < main_rows {
                    mvcc::visible(0, m_end[r as usize], snapshot, tid)
                } else {
                    let i = (r - main_rows) as usize;
                    mvcc::visible(d_begin[i], d_end[i], snapshot, tid)
                }
            })
            .collect())
    }

    /// Idempotently repair one row's MVCC words against the durably
    /// published `last_cts`: pending markers and timestamps beyond it roll
    /// back. Returns the number of words changed. Used by the engine's
    /// registry-driven recovery (O(in-flight writes) instead of O(rows)).
    pub fn repair_row(&mut self, row: RowId, last_cts: u64) -> Result<u64> {
        let (in_main, i) = self.split(row)?;
        let region = self.heap.region().clone();
        let mut repaired = 0u64;
        if in_main {
            let m = self.main_ref()?;
            let e = m.end.get(&region, i)?;
            if mvcc::is_pending(e) || (mvcc::is_committed(e) && e > last_cts) {
                m.end.store(&region, i, &TS_INF)?;
                repaired += 1;
            }
        } else {
            let b = self.delta.begin.get(&region, i)?;
            if mvcc::is_pending(b) || (mvcc::is_committed(b) && b > last_cts) {
                self.delta.begin.store(&region, i, &mvcc::TS_ABORTED)?;
                repaired += 1;
            }
            let e = self.delta.end.get(&region, i)?;
            if mvcc::is_pending(e) || (mvcc::is_committed(e) && e != TS_INF && e > last_cts) {
                self.delta.end.store(&region, i, &TS_INF)?;
                repaired += 1;
            }
        }
        Ok(repaired)
    }

    /// Post-crash MVCC repair by full scan: roll back every effect of
    /// transactions that did not durably commit (pending markers, and
    /// commit timestamps beyond the published `last_cts`). Scans only the
    /// timestamp arrays — never column data — but is still O(rows); the
    /// engine prefers the registry-driven [`NvTable::repair_row`] path and
    /// keeps this as the fallback undo pass (and for tests/ablations).
    pub fn recover_mvcc(&mut self, last_cts: u64) -> Result<u64> {
        let region = self.heap.region().clone();
        let mut repaired = 0u64;
        let rows = self.delta.rows;
        let begins = self.delta_begin_vec()?;
        let ends = self.delta_end_vec()?;
        for i in 0..rows {
            let b = begins[i as usize];
            if mvcc::is_pending(b) || (mvcc::is_committed(b) && b > last_cts) {
                self.delta.begin.store(&region, i, &mvcc::TS_ABORTED)?;
                repaired += 1;
            }
            let e = ends[i as usize];
            if mvcc::is_pending(e) || (mvcc::is_committed(e) && e != TS_INF && e > last_cts) {
                self.delta.end.store(&region, i, &TS_INF)?;
                repaired += 1;
            }
        }
        if let Some(m) = &self.main {
            let ends = m.end.to_vec(&region)?;
            for (i, e) in ends.iter().enumerate() {
                if mvcc::is_pending(*e) || (mvcc::is_committed(*e) && *e > last_cts) {
                    m.end.store(&region, i as u64, &TS_INF)?;
                    repaired += 1;
                }
            }
        }
        Ok(repaired)
    }
}

/// Fingerprint one main column's immutable media: the descriptor words
/// before the checksum slot, then dictionary, blob, and attribute vector.
fn main_col_sum(region: &NvmRegion, base: u64) -> Result<u64> {
    let dict_ptr: u64 = region.read_pod(base)?;
    let dict_len: u64 = region.read_pod(base + 8)?;
    let av_ptr: u64 = region.read_pod(base + 16)?;
    let av_words: u64 = region.read_pod(base + 24)?;
    let blob_ptr: u64 = region.read_pod(base + 40)?;
    let blob_len: u64 = region.read_pod(base + 48)?;
    let mut sum = region.with_slice(base, MC_SUM_COVERS, util::hash::fnv1a)?;
    if dict_len > 0 {
        sum = region.with_slice(dict_ptr, dict_len * 8, |b| {
            util::hash::fnv1a_continue(sum, b)
        })?;
    }
    if blob_len > 0 {
        sum = region.with_slice(blob_ptr, blob_len, |b| util::hash::fnv1a_continue(sum, b))?;
    }
    if av_words > 0 {
        sum = region.with_slice(av_ptr, av_words * 8, |b| util::hash::fnv1a_continue(sum, b))?;
    }
    Ok(sum)
}

/// A timestamp word is *plausible* iff it is one of the states the MVCC
/// protocol can legitimately leave behind: a pending marker, the aborted
/// sentinel, infinity, or a commit timestamp no later than the published
/// `last_cts`. Media faults that forge exactly one of these states evade the
/// check (see the module docs); everything else is caught.
fn plausible_ts(ts: u64, last_cts: u64) -> bool {
    mvcc::is_pending(ts) || ts == mvcc::TS_ABORTED || ts == TS_INF || ts <= last_cts
}

/// One contiguous run of table media, as reported by
/// [`NvTable::media_extents`] — the targeting map for fault-injection
/// harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaExtent {
    /// What the bytes hold (stable label, usable in artifacts).
    pub what: &'static str,
    /// Start offset in the region.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
    /// Whether a content checksum covers the run (mutable runs are only
    /// plausibility-checked).
    pub checksummed: bool,
}

/// Decode a delta dictionary entry word into a value (text entries are
/// local offsets into the column's blob).
fn decode_delta_entry(
    region: &NvmRegion,
    dtype: DataType,
    blob: &PVec<u8>,
    word: u64,
) -> Result<Value> {
    Ok(match dtype {
        DataType::Int => Value::Int(word as i64),
        DataType::Double => Value::Double(f64::from_bits(word)),
        DataType::Text => {
            let len_bytes = blob.read_bytes_at(region, word, 4)?;
            let n = u32::from_le_bytes(len_bytes.try_into().map_err(|_| StorageError::Corrupt {
                reason: "truncated blob length prefix",
            })?) as u64;
            let bytes = blob.read_bytes_at(region, word + 4, n)?;
            Value::Text(String::from_utf8(bytes).map_err(|_| StorageError::Corrupt {
                reason: "delta blob string not utf-8",
            })?)
        }
    })
}

/// Free the data block behind a `PSlab` header.
fn free_slab_data(heap: &NvmHeap, region: &NvmRegion, hdr: u64) -> Result<()> {
    let data: u64 = region.read_pod(hdr + 8)?;
    if data != 0 {
        heap.free(data, None)?;
    }
    Ok(())
}

impl TableStore for NvTable {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn row_count(&self) -> u64 {
        self.main_rows_() + self.delta.rows
    }

    fn main_rows(&self) -> u64 {
        self.main_rows_()
    }

    fn insert_version(&mut self, values: &[Value], begin_marker: u64) -> Result<RowId> {
        self.schema.check_row(values)?;
        let region = self.heap.region().clone();
        let idx = self.delta.rows;

        // 1. Intern values (dictionary appends are independently durable).
        let mut ids = Vec::with_capacity(values.len());
        for (c, v) in values.iter().enumerate() {
            ids.push(self.intern(c, v)?);
        }

        // 2. Grow arrays as needed (crash-safe pointer swaps inside).
        self.delta.begin.ensure(&self.heap, idx, idx)?;
        self.delta.end.ensure(&self.heap, idx, idx)?;
        for c in 0..values.len() {
            self.delta.cols[c].av.ensure(&self.heap, idx, idx)?;
        }

        // 3. Write the row's cells and MVCC words, flush all, single fence.
        for (c, id) in ids.iter().enumerate() {
            self.delta.cols[c].av.set(&region, idx, id)?;
        }
        self.delta.begin.set(&region, idx, &begin_marker)?;
        self.delta.end.set(&region, idx, &TS_INF)?;
        for c in 0..values.len() {
            let off = self.delta.cols[c].av.header_offset();
            let data: u64 = region.read_pod(off + 8)?;
            region.flush(data + idx * 4, 4)?;
        }
        {
            let b_data: u64 = region.read_pod(self.delta.begin.header_offset() + 8)?;
            let e_data: u64 = region.read_pod(self.delta.end.header_offset() + 8)?;
            region.flush(b_data + idx * 8, 8)?;
            region.flush(e_data + idx * 8, 8)?;
        }
        region.fence();

        // 4. Publish the row.
        // pmlint: publish(delta-rows)
        region.store_u64_release(self.delta.desc + DD_ROWS, idx + 1)?;
        region.persist(self.delta.desc + DD_ROWS, 8)?;
        self.delta.rows = idx + 1;
        Ok(self.main_rows_() + idx)
    }

    fn try_invalidate(&mut self, row: RowId, marker: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        let region = self.region();
        let current = if in_main {
            self.main_ref()?.end.get(region, i)?
        } else {
            self.delta.end.get(region, i)?
        };
        if current != TS_INF {
            return Err(StorageError::WriteConflict { row });
        }
        if in_main {
            self.main_ref()?.end.store(region, i, &marker)?;
        } else {
            self.delta.end.store(region, i, &marker)?;
        }
        Ok(())
    }

    fn restore_end(&mut self, row: RowId) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        let region = self.region();
        if in_main {
            self.main_ref()?.end.store(region, i, &TS_INF)?;
        } else {
            self.delta.end.store(region, i, &TS_INF)?;
        }
        Ok(())
    }

    fn abort_insert(&mut self, row: RowId) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            return Err(StorageError::MainRowImmutable { row });
        }
        let region = self.region();
        self.delta.begin.store(region, i, &mvcc::TS_ABORTED)?;
        Ok(())
    }

    fn commit_insert(&mut self, row: RowId, cts: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            return Err(StorageError::MainRowImmutable { row });
        }
        let region = self.region();
        self.delta.begin.store(region, i, &cts)?;
        Ok(())
    }

    fn commit_invalidate(&mut self, row: RowId, cts: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        let region = self.region();
        if in_main {
            self.main_ref()?.end.store(region, i, &cts)?;
        } else {
            self.delta.end.store(region, i, &cts)?;
        }
        Ok(())
    }

    fn stamp_insert(&mut self, row: RowId, cts: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            return Err(StorageError::MainRowImmutable { row });
        }
        let region = self.region();
        self.delta.begin.store_unfenced(region, i, &cts)?;
        Ok(())
    }

    fn stamp_invalidate(&mut self, row: RowId, cts: u64) -> Result<()> {
        let (in_main, i) = self.split(row)?;
        let region = self.region();
        if in_main {
            self.main_ref()?.end.store_unfenced(region, i, &cts)?;
        } else {
            self.delta.end.store_unfenced(region, i, &cts)?;
        }
        Ok(())
    }

    fn commit_fence(&mut self) -> Result<()> {
        self.region().fence();
        Ok(())
    }

    fn begin_ts(&self, row: RowId) -> Result<u64> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            Ok(0)
        } else {
            Ok(self.delta.begin.get(self.region(), i)?)
        }
    }

    fn end_ts(&self, row: RowId) -> Result<u64> {
        let (in_main, i) = self.split(row)?;
        if in_main {
            Ok(self.main_ref()?.end.get(self.region(), i)?)
        } else {
            Ok(self.delta.end.get(self.region(), i)?)
        }
    }

    fn value(&self, row: RowId, col: ColumnId) -> Result<Value> {
        self.check_col(col)?;
        let (in_main, i) = self.split(row)?;
        if in_main {
            let m = self.main_ref()?;
            let mcol = &m.cols[col];
            // Read the (up to two) words covering the packed slot.
            let bit = i * mcol.width as u64;
            let w0 = bit / 64;
            let need_two = (bit % 64) + mcol.width as u64 > 64;
            let words = if need_two {
                [
                    m.cols[col].av.get(self.region(), w0)?,
                    m.cols[col].av.get(self.region(), w0 + 1)?,
                ]
            } else {
                [m.cols[col].av.get(self.region(), w0)?, 0]
            };
            let shift = (bit % 64) as u32;
            let mask = if mcol.width == 64 {
                u64::MAX
            } else {
                (1u64 << mcol.width) - 1
            };
            let mut id = (words[0] >> shift) & mask;
            if need_two {
                let hi_bits = (shift as u64 + mcol.width as u64) - 64;
                let lo_taken = mcol.width as u64 - hi_bits;
                id |= (words[1] & ((1u64 << hi_bits) - 1)) << lo_taken;
            }
            self.main_dict_value(m, col, id)
        } else {
            let id = self.delta.cols[col].av.get(self.region(), i)?;
            self.delta_dict_value(col, id)
        }
    }

    fn scan_visible(&self, snapshot: u64, tid: u64) -> Result<Vec<RowId>> {
        self.visible_filter(0..self.row_count(), snapshot, tid)
    }

    fn scan_eq(&self, col: ColumnId, value: &Value, snapshot: u64, tid: u64) -> Result<Vec<RowId>> {
        self.check_col(col)?;
        let mut hits = Vec::new();
        if let Some(m) = &self.main {
            if let Ok(target) = self.main_dict_search(m, col, value)? {
                let ids = self.main_av_ids(m, col)?;
                for (i, id) in ids.iter().enumerate() {
                    if *id == target {
                        hits.push(i as u64);
                    }
                }
            }
        }
        if let Some(&target) = self.delta.probes[col].get(value) {
            let base = self.main_rows_();
            let ids = self.delta_av_ids(col)?;
            for (i, id) in ids.iter().enumerate() {
                if *id == target {
                    hits.push(base + i as u64);
                }
            }
        }
        self.visible_filter(hits.into_iter(), snapshot, tid)
    }

    fn scan_range(
        &self,
        col: ColumnId,
        lo: Option<&Value>,
        hi: Option<&Value>,
        snapshot: u64,
        tid: u64,
    ) -> Result<Vec<RowId>> {
        self.check_col(col)?;
        let mut hits = Vec::new();
        if let Some(m) = &self.main {
            let lo_id = match lo {
                Some(v) => self.main_dict_lower_bound(m, col, v)?,
                None => 0,
            };
            let hi_id = match hi {
                Some(v) => self.main_dict_lower_bound(m, col, v)?,
                None => m.cols[col].dict_len,
            };
            if lo_id < hi_id {
                let ids = self.main_av_ids(m, col)?;
                for (i, id) in ids.iter().enumerate() {
                    if *id >= lo_id && *id < hi_id {
                        hits.push(i as u64);
                    }
                }
            }
        }
        // Delta: unsorted dictionary — evaluate the predicate per entry.
        let dict_words = self.delta.cols[col].dict.to_vec(self.region())?;
        let dtype = self.schema.column(col)?.dtype;
        let mut matches = Vec::with_capacity(dict_words.len());
        for w in &dict_words {
            let v = decode_delta_entry(self.region(), dtype, &self.delta.cols[col].blob, *w)?;
            matches.push(lo.is_none_or(|l| &v >= l) && hi.is_none_or(|h| &v < h));
        }
        let base = self.main_rows_();
        let ids = self.delta_av_ids(col)?;
        for (i, id) in ids.iter().enumerate() {
            if matches[*id as usize] {
                hits.push(base + i as u64);
            }
        }
        self.visible_filter(hits.into_iter(), snapshot, tid)
    }

    fn merge(&mut self, snapshot: u64) -> Result<MergeStats> {
        let plan = self.merge_plan(snapshot)?;
        self.merge_from_plan(plan)
    }
}

/// A planned merge: the surviving row values, collected read-only. The
/// post-merge row id of each survivor is its position in
/// [`MergePlan::rows`], so replacement structures (indexes) can be built
/// against the plan *before* [`NvTable::merge_from_plan`] publishes
/// anything — the exhaustion-safe ordering where every fallible allocation
/// precedes the atomic pair swap and a capacity failure leaves the old
/// table untouched.
#[derive(Debug)]
pub struct MergePlan {
    snapshot: u64,
    rows_before: u64,
    survivors: Vec<Vec<Value>>,
}

impl MergePlan {
    /// The surviving rows in post-merge row-id order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.survivors
    }

    /// The snapshot the plan was taken at.
    pub fn snapshot(&self) -> u64 {
        self.snapshot
    }
}

impl NvTable {
    /// Collect the rows that survive a merge at `snapshot`. Read-only: no
    /// allocation, no mutation, fails only on a non-quiesced table or a
    /// media error.
    pub fn merge_plan(&self, snapshot: u64) -> Result<MergePlan> {
        let total = self.row_count();
        let m_end = self.main_end_vec()?;
        let d_begin = self.delta_begin_vec()?;
        let d_end = self.delta_end_vec()?;
        let main_rows = self.main_rows_();
        let mut survivors: Vec<Vec<Value>> = Vec::new();
        for row in 0..total {
            let (b, e) = if row < main_rows {
                (0, m_end[row as usize])
            } else {
                let i = (row - main_rows) as usize;
                (d_begin[i], d_end[i])
            };
            if mvcc::is_pending(b) || mvcc::is_pending(e) {
                return Err(StorageError::Corrupt {
                    reason: "merge requires a quiesced table (pending markers found)",
                });
            }
            if mvcc::visible(b, e, snapshot, 0) {
                survivors.push(self.row_values(row)?);
            }
        }
        Ok(MergePlan {
            snapshot,
            rows_before: total,
            survivors,
        })
    }

    /// Execute a planned merge: build the new main tree and empty delta in
    /// fresh allocations, then swap them in with one atomic pair publish.
    /// Every allocation precedes the swap, so a capacity failure unwinds
    /// with the old table fully intact (freshly allocated blocks leak until
    /// reclamation; nothing is published).
    pub fn merge_from_plan(&mut self, plan: MergePlan) -> Result<MergeStats> {
        let region = self.heap.region().clone();
        let heap = self.heap.clone();
        let MergePlan {
            rows_before: total,
            survivors,
            ..
        } = plan;
        let nrows = survivors.len() as u64;
        let ncols = self.schema.len();

        // 2+3. Build the replacement trees. Every allocation is tracked so
        // a capacity failure anywhere below unwinds completely: an
        // exhausted merge must leave the heap exactly as it found it.
        let mut allocated: Vec<u64> = Vec::new();
        let mut delta_built = 0u64;
        let mut pair_reserved = 0u64;
        let root = self.root;
        let built = (|| -> Result<(u64, u64, u64)> {
            let new_main = heap.alloc(main_desc_size(ncols))?;
            allocated.push(new_main);
            region.write_pod(new_main + MD_ROWS, &nrows)?;
            let end_ptr = heap.alloc((nrows * 8).max(8))?;
            allocated.push(end_ptr);
            for i in 0..nrows {
                region.write_pod(end_ptr + i * 8, &TS_INF)?;
            }
            region.persist(end_ptr, (nrows * 8).max(8))?;
            region.write_pod(new_main + MD_END, &end_ptr)?;

            for c in 0..ncols {
                let mut dict: Vec<Value> = survivors.iter().map(|r| r[c].clone()).collect();
                dict.sort();
                dict.dedup();
                let ids: Vec<u64> = survivors
                    .iter()
                    .map(|r| {
                        dict.binary_search(&r[c]).map(|i| i as u64).map_err(|_| {
                            StorageError::Corrupt {
                                reason: "merge dictionary missing a surviving value",
                            }
                        })
                    })
                    .collect::<Result<_>>()?;
                let width = bitpack::width_for(dict.len() as u64);
                let words = bitpack::pack_all(&ids, width);

                // Text columns get one contiguous blob; entries are local
                // offsets into it.
                let mut blob_bytes: Vec<u8> = Vec::new();
                let dict_ptr = heap.alloc((dict.len() as u64 * 8).max(8))?;
                allocated.push(dict_ptr);
                for (i, v) in dict.iter().enumerate() {
                    let word = match v {
                        Value::Text(s) => {
                            let local = blob_bytes.len() as u64;
                            blob_bytes.extend_from_slice(&(s.len() as u32).to_le_bytes());
                            blob_bytes.extend_from_slice(s.as_bytes());
                            local
                        }
                        other => other.as_word().ok_or(StorageError::Corrupt {
                            reason: "non-text value has no word encoding",
                        })?,
                    };
                    region.write_pod(dict_ptr + i as u64 * 8, &word)?;
                }
                region.persist(dict_ptr, (dict.len() as u64 * 8).max(8))?;
                let blob_ptr = if blob_bytes.is_empty() {
                    0
                } else {
                    let b = heap.alloc(blob_bytes.len() as u64)?;
                    allocated.push(b);
                    region.write_bytes(b, &blob_bytes)?;
                    region.persist(b, blob_bytes.len() as u64)?;
                    b
                };

                let av_ptr = heap.alloc((words.len() as u64 * 8).max(8))?;
                allocated.push(av_ptr);
                for (i, w) in words.iter().enumerate() {
                    region.write_pod(av_ptr + i as u64 * 8, w)?;
                }
                region.persist(av_ptr, (words.len() as u64 * 8).max(8))?;

                let base = new_main + MD_COLS + c as u64 * MD_COL_STRIDE;
                region.write_pod(base, &dict_ptr)?;
                region.write_pod(base + 8, &(dict.len() as u64))?;
                region.write_pod(base + 16, &av_ptr)?;
                region.write_pod(base + 24, &(words.len() as u64))?;
                region.write_pod(base + 32, &(width as u64))?;
                region.write_pod(base + 40, &blob_ptr)?;
                region.write_pod(base + 48, &(blob_bytes.len() as u64))?;
                // Seal the column: fingerprint the descriptor plus the payloads
                // just written, before the pair swap makes any of it reachable.
                region.write_pod(base + MC_SUM, &main_col_sum(&region, base)?)?;
            }
            region.persist(new_main, main_desc_size(ncols))?;

            // 3. Fresh empty delta.
            let new_delta = Self::create_delta_desc(&heap, ncols)?;
            delta_built = new_delta;

            // 4a. Reserve and fill the new pair block.
            let old_pair: u64 = region.read_pod(root + ROOT_PAIR)?;
            let pair = heap.reserve(PAIR_SIZE)?;
            pair_reserved = pair;
            region.write_pod(pair + PAIR_DELTA, &new_delta)?;
            region.write_pod(pair + PAIR_MAIN, &new_main)?;
            region.persist(pair, PAIR_SIZE)?;
            Ok((pair, old_pair, new_main))
        })();
        let unwind = |heap: &NvmHeap| {
            if pair_reserved != 0 {
                let _ = heap.free(pair_reserved, None);
            }
            if delta_built != 0 {
                let _ = Self::free_delta_tree_in(heap, delta_built, ncols);
            }
            for p in allocated.iter().rev() {
                let _ = heap.free(*p, None);
            }
        };
        let (pair, old_pair, _new_main) = match built {
            Ok(v) => v,
            Err(e) => {
                unwind(&heap);
                return Err(e);
            }
        };

        // 4b. Atomic swap: the new pair block replaces the old one.
        // pmlint: publish(table-pair)
        if let Err(e) = heap.activate(pair, Some((self.root + ROOT_PAIR, pair)), Some(old_pair)) {
            unwind(&heap);
            return Err(e.into());
        }

        // 5. Reclaim the old tree (leaks only if we crash mid-free).
        // The old pair block was already freed by the activate(replaces).
        let ncols_u = ncols;
        {
            // free_tree expects the pair to still be readable; the block is
            // freed but its bytes are intact, so the walk works. We bypass
            // the final pair free since `activate` already did it.
            let old_delta: u64 = region.read_pod(old_pair + PAIR_DELTA)?;
            let old_main: u64 = region.read_pod(old_pair + PAIR_MAIN)?;
            self.free_delta_tree(old_delta, ncols_u)?;
            if old_main != 0 {
                self.free_main_tree(old_main, ncols_u)?;
            }
        }

        // 6. Refresh the volatile handle.
        let reopened = Self::open(&heap, self.root)?;
        *self = reopened;

        Ok(MergeStats {
            rows_before: total,
            rows_merged: nrows,
            rows_dropped: total - nrows,
        })
    }
}

impl NvTable {
    /// Scan-time media verification, separate from the fast restart path so
    /// instant-restart latency is unaffected when callers skip it.
    ///
    /// Checks, in order: delta row counter against structure capacities;
    /// per-column delta dictionary and string-blob content checksums; delta
    /// attribute-vector value-ids against dictionary lengths; MVCC timestamp
    /// plausibility against `last_cts`; per-column main checksums (the
    /// descriptor, dictionary, blob, and attribute vector); main
    /// end-timestamp plausibility. Returns the number of structures
    /// verified; the first failure surfaces as a typed error naming the
    /// structure.
    pub fn verify_media(&self, last_cts: u64) -> Result<u64> {
        let region = self.region();
        let mut checked = 0u64;

        // Delta row counter vs what the structures can actually hold.
        let rows = self.delta.rows;
        if rows > self.delta.begin.capacity(region)? || rows > self.delta.end.capacity(region)? {
            return Err(StorageError::Corrupt {
                reason: "delta row counter exceeds timestamp-array capacity",
            });
        }
        checked += 1;

        for col in &self.delta.cols {
            col.dict.verify(region, "delta dictionary")?;
            col.blob.verify(region, "delta string blob")?;
            checked += 2;
            if rows > col.av.capacity(region)? {
                return Err(StorageError::Corrupt {
                    reason: "delta row counter exceeds attribute-vector capacity",
                });
            }
            let dict_len = col.dict.len(region)?;
            for id in col.av.prefix(region, rows)? {
                if (id as u64) >= dict_len {
                    return Err(StorageError::Corrupt {
                        reason: "delta attribute vector references a missing dictionary entry",
                    });
                }
            }
            checked += 1;
        }

        for b in self.delta_begin_vec()? {
            if !plausible_ts(b, last_cts) {
                return Err(StorageError::Corrupt {
                    reason: "implausible delta begin timestamp",
                });
            }
        }
        for e in self.delta_end_vec()? {
            if !plausible_ts(e, last_cts) {
                return Err(StorageError::Corrupt {
                    reason: "implausible delta end timestamp",
                });
            }
        }
        checked += 2;

        if let Some(m) = &self.main {
            let pair: u64 = region.read_pod(self.root + ROOT_PAIR)?;
            let main_desc: u64 = region.read_pod(pair + PAIR_MAIN)?;
            for c in 0..self.schema.len() as u64 {
                let base = main_desc + MD_COLS + c * MD_COL_STRIDE;
                let stored: u64 = region.read_pod(base + MC_SUM)?;
                let computed = main_col_sum(region, base)?;
                if stored != computed {
                    return Err(StorageError::Nvm(nvm::NvmError::ChecksumMismatch {
                        what: "main column",
                        offset: base,
                        stored,
                        computed,
                    }));
                }
                checked += 1;
            }
            for e in m.end.to_vec(region)? {
                if !plausible_ts(e, last_cts) {
                    return Err(StorageError::Corrupt {
                        reason: "implausible main end timestamp",
                    });
                }
            }
            checked += 1;
        }
        Ok(checked)
    }

    /// Enumerate the table's media runs — offsets and lengths of every
    /// persistent structure, labelled and flagged by whether a content
    /// checksum covers it. Fault-injection harnesses use this to aim faults
    /// at live data and to know which hits *must* be detected.
    pub fn media_extents(&self) -> Result<Vec<MediaExtent>> {
        let region = self.region();
        let mut out = Vec::new();
        let rows = self.delta.rows;

        let b_data: u64 = region.read_pod(self.delta.begin.header_offset() + 8)?;
        let e_data: u64 = region.read_pod(self.delta.end.header_offset() + 8)?;
        out.push(MediaExtent {
            what: "delta-begin",
            offset: b_data,
            len: rows * 8,
            checksummed: false,
        });
        out.push(MediaExtent {
            what: "delta-end",
            offset: e_data,
            len: rows * 8,
            checksummed: false,
        });

        for col in &self.delta.cols {
            out.push(MediaExtent {
                what: "delta-dict",
                offset: col.dict.data_offset(region)?,
                len: col.dict.len(region)? * 8,
                checksummed: true,
            });
            out.push(MediaExtent {
                what: "delta-blob",
                offset: col.blob.data_offset(region)?,
                len: col.blob.len(region)?,
                checksummed: true,
            });
            let av_data: u64 = region.read_pod(col.av.header_offset() + 8)?;
            out.push(MediaExtent {
                what: "delta-av",
                offset: av_data,
                len: rows * 4,
                checksummed: false,
            });
        }

        if let Some(m) = &self.main {
            for col in &m.cols {
                out.push(MediaExtent {
                    what: "main-dict",
                    offset: col.dict_ptr,
                    len: col.dict_len * 8,
                    checksummed: true,
                });
                out.push(MediaExtent {
                    what: "main-av",
                    offset: col.av.offset(),
                    len: col.av.byte_len(),
                    checksummed: true,
                });
                out.push(MediaExtent {
                    what: "main-blob",
                    offset: col.blob_ptr,
                    len: col.blob_len,
                    checksummed: true,
                });
            }
            out.push(MediaExtent {
                what: "main-end",
                offset: m.end.offset(),
                len: m.end.byte_len(),
                checksummed: false,
            });
        }
        out.retain(|e| e.len > 0);
        Ok(out)
    }

    fn free_delta_tree(&self, old_delta: u64, ncols: usize) -> Result<()> {
        Self::free_delta_tree_in(&self.heap, old_delta, ncols)
    }

    /// Free a delta tree through a bare heap handle. Tolerates partially
    /// initialised descriptors whose untouched fields read as null — the
    /// exhaustion unwind in `create_delta_desc` relies on this.
    fn free_delta_tree_in(heap: &NvmHeap, old_delta: u64, ncols: usize) -> Result<()> {
        let region = heap.region();
        free_slab_data(heap, region, old_delta + DD_BEGIN)?;
        free_slab_data(heap, region, old_delta + DD_END)?;
        for c in 0..ncols {
            let base = old_delta + DD_COLS + c as u64 * DD_COL_STRIDE;
            let dict = PVec::<u64>::open(base);
            let data = dict.data_offset(region)?;
            if data != 0 {
                heap.free(data, None)?;
            }
            free_slab_data(heap, region, base + PVEC_HEADER)?;
            let blob = PVec::<u8>::open(base + PVEC_HEADER + PSLAB_HEADER);
            let blob_data = blob.data_offset(region)?;
            if blob_data != 0 {
                heap.free(blob_data, None)?;
            }
        }
        Ok(heap.free(old_delta, None)?)
    }

    fn free_main_tree(&self, old_main: u64, ncols: usize) -> Result<()> {
        let region = self.region();
        let heap = &self.heap;
        let end_ptr: u64 = region.read_pod(old_main + MD_END)?;
        heap.free(end_ptr, None)?;
        for c in 0..ncols {
            let base = old_main + MD_COLS + c as u64 * MD_COL_STRIDE;
            let dict_ptr: u64 = region.read_pod(base)?;
            let av_ptr: u64 = region.read_pod(base + 16)?;
            let blob_ptr: u64 = region.read_pod(base + 40)?;
            heap.free(dict_ptr, None)?;
            heap.free(av_ptr, None)?;
            if blob_ptr != 0 {
                heap.free(blob_ptr, None)?;
            }
        }
        Ok(heap.free(old_main, None)?)
    }
}
