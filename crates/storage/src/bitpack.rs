//! Bit-packed integer vectors for main-partition attribute vectors.
//!
//! After a merge, every value in a column is a value-id into the sorted
//! dictionary; ids fit in `ceil(log2(dict_len))` bits and are packed into
//! `u64` words. The packing math here is shared by the volatile main store
//! (over a `Vec<u64>`) and the NVM main store (over a persistent word
//! array): both just provide the word slice.

/// Number of bits needed to represent ids `0..n` (at least 1).
#[inline]
pub fn width_for(n: u64) -> u32 {
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Number of `u64` words needed to hold `count` values of `width` bits.
#[inline]
pub fn words_for(count: u64, width: u32) -> u64 {
    (count * width as u64).div_ceil(64)
}

/// Write value `v` (must fit in `width` bits) at index `i` into `words`.
/// Values may straddle a word boundary.
pub fn pack_at(words: &mut [u64], width: u32, i: u64, v: u64) {
    debug_assert!((1..=32).contains(&width));
    debug_assert!(width == 64 || v < (1u64 << width), "value does not fit");
    let bit = i * width as u64;
    let word = (bit / 64) as usize;
    let shift = (bit % 64) as u32;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    words[word] = (words[word] & !(mask << shift)) | (v << shift);
    let spill = shift as u64 + width as u64;
    if spill > 64 {
        let hi_bits = spill - 64;
        let lo_taken = width as u64 - hi_bits;
        let hi_mask = (1u64 << hi_bits) - 1;
        words[word + 1] = (words[word + 1] & !hi_mask) | (v >> lo_taken);
    }
}

/// Read the value at index `i` from `words`.
#[inline]
pub fn unpack_at(words: &[u64], width: u32, i: u64) -> u64 {
    let bit = i * width as u64;
    let word = (bit / 64) as usize;
    let shift = (bit % 64) as u32;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut v = (words[word] >> shift) & mask;
    let spill = shift as u64 + width as u64;
    if spill > 64 {
        let hi_bits = spill - 64;
        let lo_taken = width as u64 - hi_bits;
        let hi_mask = (1u64 << hi_bits) - 1;
        v |= (words[word + 1] & hi_mask) << lo_taken;
    }
    v
}

/// Pack a slice of ids into a fresh word vector.
pub fn pack_all(ids: &[u64], width: u32) -> Vec<u64> {
    let mut words = vec![0u64; words_for(ids.len() as u64, width) as usize];
    for (i, &v) in ids.iter().enumerate() {
        pack_at(&mut words, width, i as u64, v);
    }
    words
}

/// A packed vector owning its words — the volatile main store's attribute
/// vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitPacked {
    words: Vec<u64>,
    width: u32,
    len: u64,
}

impl BitPacked {
    /// Pack `ids`, sizing the width for ids `0..id_domain`.
    pub fn from_ids(ids: &[u64], id_domain: u64) -> BitPacked {
        let width = width_for(id_domain);
        BitPacked {
            words: pack_all(ids, width),
            width,
            len: ids.len() as u64,
        }
    }

    /// Reconstruct from raw parts (checkpoint load).
    pub fn from_raw(words: Vec<u64>, width: u32, len: u64) -> BitPacked {
        assert!(words.len() as u64 >= words_for(len, width));
        BitPacked { words, width, len }
    }

    /// Number of packed values.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no values are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Backing words (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value at index `i`.
    #[inline]
    pub fn get(&self, i: u64) -> u64 {
        debug_assert!(i < self.len);
        unpack_at(&self.words, self.width, i)
    }

    /// Iterate over all values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::rng::{Rng, SmallRng};

    #[test]
    fn width_boundaries() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 1);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 2);
        assert_eq!(width_for(5), 3);
        assert_eq!(width_for(1 << 20), 20);
        assert_eq!(width_for((1 << 20) + 1), 21);
    }

    #[test]
    fn straddling_values_roundtrip() {
        // width 7 guarantees boundary straddles.
        let ids: Vec<u64> = (0..100).map(|i| i % 128).collect();
        let packed = pack_all(&ids, 7);
        for (i, &v) in ids.iter().enumerate() {
            assert_eq!(unpack_at(&packed, 7, i as u64), v);
        }
    }

    #[test]
    fn overwrite_in_place() {
        let mut words = vec![0u64; 4];
        pack_at(&mut words, 13, 3, 4000);
        pack_at(&mut words, 13, 4, 8000);
        pack_at(&mut words, 13, 3, 1234);
        assert_eq!(unpack_at(&words, 13, 3), 1234);
        assert_eq!(unpack_at(&words, 13, 4), 8000);
    }

    #[test]
    fn bitpacked_wrapper() {
        let ids: Vec<u64> = vec![0, 5, 2, 7, 7, 1];
        let bp = BitPacked::from_ids(&ids, 8);
        assert_eq!(bp.width(), 3);
        assert_eq!(bp.len(), 6);
        assert_eq!(bp.iter().collect::<Vec<_>>(), ids);
        let rebuilt = BitPacked::from_raw(bp.words().to_vec(), bp.width(), bp.len());
        assert_eq!(rebuilt, bp);
    }

    #[test]
    fn randomized_roundtrip_all_widths() {
        let mut rng = SmallRng::seed_from_u64(0xB17_9AC4);
        for case in 0..200u64 {
            let width = 1 + (case % 32) as u32;
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let n = rng.gen_range_usize(0, 200);
            let ids: Vec<u64> = (0..n).map(|_| rng.next_u64() & mask).collect();
            let packed = pack_all(&ids, width);
            for (i, &v) in ids.iter().enumerate() {
                assert_eq!(
                    unpack_at(&packed, width, i as u64),
                    v,
                    "width {width} idx {i}"
                );
            }
        }
    }

    #[test]
    fn randomized_overwrites_match_model() {
        let mut rng = SmallRng::seed_from_u64(0x0E_55E7);
        for case in 0..200u64 {
            let width = 1 + (case % 20) as u32;
            let mask = (1u64 << width) - 1;
            let mut model = vec![0u64; 64];
            let mut words = vec![0u64; words_for(64, width) as usize];
            let nops = rng.gen_range_usize(1, 100);
            for _ in 0..nops {
                let i = rng.gen_range_u64(0, 64);
                let v = rng.next_u64() & mask;
                model[i as usize] = v;
                pack_at(&mut words, width, i, v);
            }
            for i in 0..64u64 {
                assert_eq!(unpack_at(&words, width, i), model[i as usize]);
            }
        }
    }
}
