//! Model-based property tests: both table variants against a reference
//! model, under random MVCC operation sequences, merges, and (for NVM)
//! crashes.

use std::sync::Arc;

use nvm::{CrashPolicy, LatencyModel, NvmHeap, NvmRegion};
use storage::mvcc::{self, TS_INF};
use storage::nv::NvTable;
use storage::{ColumnDef, DataType, Schema, TableStore, VTable, Value};
use util::rng::{Rng, SmallRng};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("s", DataType::Text),
    ])
}

/// Reference model: one entry per physical row version.
#[derive(Debug, Clone, PartialEq)]
struct ModelRow {
    k: i64,
    s: String,
    begin: u64,
    end: u64,
}

#[derive(Debug, Clone)]
enum MOp {
    /// Insert a committed version at the next timestamp.
    Insert { k: i64 },
    /// Invalidate (commit immediately) the visible version of `k`, if any.
    Delete { k: i64 },
    /// Insert then abort.
    AbortedInsert { k: i64 },
    /// Merge at the current timestamp.
    Merge,
}

/// Weighted random op: 4:2:1:1 insert/delete/aborted-insert/merge, as the
/// proptest strategy this replaces used.
fn mop(rng: &mut SmallRng) -> MOp {
    let k = rng.gen_range_i64(0, 30);
    match rng.gen_range_u64(0, 8) {
        0..=3 => MOp::Insert { k },
        4 | 5 => MOp::Delete { k },
        6 => MOp::AbortedInsert { k },
        _ => MOp::Merge,
    }
}

fn op_seq(rng: &mut SmallRng, lo: usize, hi: usize) -> Vec<MOp> {
    let n = rng.gen_range_usize(lo, hi);
    (0..n).map(|_| mop(rng)).collect()
}

struct Harness<T: TableStore> {
    table: T,
    model: Vec<ModelRow>,
    ts: u64,
}

impl<T: TableStore> Harness<T> {
    fn new(table: T) -> Self {
        Harness {
            table,
            model: Vec::new(),
            ts: 0,
        }
    }

    fn visible_model(&self, snapshot: u64) -> Vec<(i64, String)> {
        let mut v: Vec<(i64, String)> = self
            .model
            .iter()
            .filter(|r| mvcc::visible(r.begin, r.end, snapshot, 0))
            .map(|r| (r.k, r.s.clone()))
            .collect();
        v.sort();
        v
    }

    fn visible_table(&self, snapshot: u64) -> Vec<(i64, String)> {
        let mut v: Vec<(i64, String)> = self
            .table
            .scan_visible(snapshot, 0)
            .unwrap()
            .into_iter()
            .map(|row| {
                let vals = self.table.row_values(row).unwrap();
                (
                    vals[0].as_int().unwrap(),
                    vals[1].as_text().unwrap().to_owned(),
                )
            })
            .collect();
        v.sort();
        v
    }

    fn apply(&mut self, op: &MOp) {
        match op {
            MOp::Insert { k } => {
                self.ts += 1;
                let s = format!("v{k}@{}", self.ts);
                let row = self
                    .table
                    .insert_version(
                        &[Value::Int(*k), Value::Text(s.clone())],
                        mvcc::pending(self.ts),
                    )
                    .unwrap();
                self.table.commit_insert(row, self.ts).unwrap();
                self.model.push(ModelRow {
                    k: *k,
                    s,
                    begin: self.ts,
                    end: TS_INF,
                });
            }
            MOp::Delete { k } => {
                self.ts += 1;
                // Find the visible version in the model.
                let snapshot = self.ts - 1;
                let target = self
                    .model
                    .iter()
                    .position(|r| r.k == *k && mvcc::visible(r.begin, r.end, snapshot, 0));
                if let Some(idx) = target {
                    // Duplicate inserts mean several visible versions can
                    // carry the key; model and table share insertion order,
                    // so "first visible" matches on both sides.
                    let rows = self.table.scan_eq(0, &Value::Int(*k), snapshot, 0).unwrap();
                    assert!(!rows.is_empty(), "model/table divergence before delete");
                    self.table
                        .try_invalidate(rows[0], mvcc::pending(self.ts))
                        .unwrap();
                    self.table.commit_invalidate(rows[0], self.ts).unwrap();
                    self.model[idx].end = self.ts;
                }
            }
            MOp::AbortedInsert { k } => {
                self.ts += 1;
                let row = self
                    .table
                    .insert_version(
                        &[Value::Int(*k), Value::Text("aborted".into())],
                        mvcc::pending(self.ts),
                    )
                    .unwrap();
                self.table.abort_insert(row).unwrap();
                self.model.push(ModelRow {
                    k: *k,
                    s: "aborted".into(),
                    begin: mvcc::TS_ABORTED,
                    end: TS_INF,
                });
            }
            MOp::Merge => {
                self.table.merge(self.ts).unwrap();
                // Model merge: keep exactly the currently visible versions,
                // re-based to begin 0.
                self.model = self
                    .model
                    .iter()
                    .filter(|r| mvcc::visible(r.begin, r.end, self.ts, 0))
                    .map(|r| ModelRow {
                        k: r.k,
                        s: r.s.clone(),
                        begin: 0,
                        end: TS_INF,
                    })
                    .collect();
            }
        }
    }
}

/// The volatile table tracks the model exactly, at the latest snapshot
/// and at every historical one.
#[test]
fn vtable_matches_model() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x7AB1E ^ case);
        let ops = op_seq(&mut rng, 1, 60);
        let mut h = Harness::new(VTable::new(schema()));
        let mut merge_points = vec![];
        for op in &ops {
            if matches!(op, MOp::Merge) {
                merge_points.push(h.ts);
            }
            h.apply(op);
            assert_eq!(h.visible_table(h.ts), h.visible_model(h.ts), "case {case}");
        }
        // Historical snapshots since the last merge also agree (merges
        // discard pre-merge history).
        let floor = merge_points.last().copied().unwrap_or(0);
        for snap in floor..=h.ts {
            assert_eq!(h.visible_table(snap), h.visible_model(snap), "case {case}");
        }
    }
}

/// The NVM table behaves identically AND survives a crash at the end
/// with no change to committed state.
#[test]
fn nvtable_matches_model_and_survives_crash() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x27AB1E ^ case);
        let ops = op_seq(&mut rng, 1, 40);
        let seed = rng.next_u64();
        let heap =
            NvmHeap::format(Arc::new(NvmRegion::new(32 << 20, LatencyModel::zero()))).unwrap();
        let table = NvTable::create(&heap, schema()).unwrap();
        let root = table.root_offset();
        let mut h = Harness::new(table);
        for op in &ops {
            h.apply(op);
        }
        let expected = h.visible_model(h.ts);
        assert_eq!(h.visible_table(h.ts), expected.clone(), "case {case}");

        let ts = h.ts;
        drop(h);
        heap.region()
            .crash(CrashPolicy::RandomEviction { p: 0.4, seed });
        let (heap2, _) = NvmHeap::open(heap.region().clone()).unwrap();
        let mut t2 = NvTable::open(&heap2, root).unwrap();
        t2.recover_mvcc(ts).unwrap();
        let mut got: Vec<(i64, String)> = t2
            .scan_visible(ts, 0)
            .unwrap()
            .into_iter()
            .map(|row| {
                let vals = t2.row_values(row).unwrap();
                (
                    vals[0].as_int().unwrap(),
                    vals[1].as_text().unwrap().to_owned(),
                )
            })
            .collect();
        got.sort();
        assert_eq!(got, expected, "case {case}");
    }
}

/// Range scans agree between the two table variants after identical
/// histories (cross-implementation differential test).
#[test]
fn scan_parity_between_variants() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x5CA9 ^ case);
        let ops = op_seq(&mut rng, 1, 40);
        let lo = rng.gen_range_i64(0, 30);
        let width = rng.gen_range_i64(1, 15);
        let heap =
            NvmHeap::format(Arc::new(NvmRegion::new(32 << 20, LatencyModel::zero()))).unwrap();
        let mut hv = Harness::new(VTable::new(schema()));
        let mut hn = Harness::new(NvTable::create(&heap, schema()).unwrap());
        for op in &ops {
            hv.apply(op);
            hn.apply(op);
        }
        let snap = hv.ts;
        let (lo_v, hi_v) = (Value::Int(lo), Value::Int(lo + width));
        let a = hv
            .table
            .scan_range(0, Some(&lo_v), Some(&hi_v), snap, 0)
            .unwrap();
        let b = hn
            .table
            .scan_range(0, Some(&lo_v), Some(&hi_v), snap, 0)
            .unwrap();
        assert_eq!(a, b, "case {case}");
        let a = hv
            .table
            .scan_eq(1, &Value::Text(format!("v{lo}@1")), snap, 0)
            .unwrap();
        let b = hn
            .table
            .scan_eq(1, &Value::Text(format!("v{lo}@1")), snap, 0)
            .unwrap();
        assert_eq!(a, b, "case {case}");
    }
}
