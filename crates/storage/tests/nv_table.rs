//! Integration tests for the NVM-resident table: functional parity with the
//! volatile table plus crash/recovery behaviour.

use std::sync::Arc;

use nvm::{CrashPolicy, LatencyModel, NvmHeap, NvmRegion};
use storage::mvcc::{self, TS_INF};
use storage::nv::NvTable;
use storage::{ColumnDef, DataType, Schema, StorageError, TableStore, Value};

fn heap(bytes: u64) -> NvmHeap {
    NvmHeap::format(Arc::new(NvmRegion::new(bytes, LatencyModel::zero()))).unwrap()
}

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("s", DataType::Text),
        ColumnDef::new("x", DataType::Double),
    ])
}

fn row(k: i64, s: &str, x: f64) -> Vec<Value> {
    vec![Value::Int(k), s.into(), Value::Double(x)]
}

fn reopen(h: &NvmHeap, root: u64) -> NvTable {
    let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
    NvTable::open(&h2, root).unwrap()
}

#[test]
fn create_insert_read() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let r = t.insert_version(&row(7, "hello", 1.25), 3).unwrap();
    assert_eq!(t.row_count(), 1);
    assert_eq!(t.row_values(r).unwrap(), row(7, "hello", 1.25));
    assert_eq!(t.begin_ts(r).unwrap(), 3);
    assert_eq!(t.end_ts(r).unwrap(), TS_INF);
}

#[test]
fn committed_rows_survive_crash_and_reopen() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let root = t.root_offset();
    for i in 0..50 {
        let r = t
            .insert_version(&row(i, &format!("s{i}"), i as f64), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, (i + 1) as u64).unwrap();
    }
    h.region().crash(CrashPolicy::DropUnflushed);
    let t2 = reopen(&h, root);
    assert_eq!(t2.row_count(), 50);
    for i in 0..50u64 {
        assert_eq!(
            t2.row_values(i).unwrap(),
            row(i as i64, &format!("s{i}"), i as f64)
        );
        assert_eq!(t2.begin_ts(i).unwrap(), i + 1);
    }
}

#[test]
fn pending_rows_rolled_back_by_recover_mvcc() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let root = t.root_offset();
    let r1 = t
        .insert_version(&row(1, "committed", 0.0), mvcc::pending(1))
        .unwrap();
    t.commit_insert(r1, 5).unwrap();
    // Pending insert (txn never committed).
    t.insert_version(&row(2, "pending", 0.0), mvcc::pending(2))
        .unwrap();
    // Pending invalidation of the committed row.
    t.try_invalidate(r1, mvcc::pending(2)).unwrap();

    h.region().crash(CrashPolicy::DropUnflushed);
    let mut t2 = reopen(&h, root);
    let repaired = t2.recover_mvcc(5).unwrap();
    assert_eq!(repaired, 2);
    let vis = t2.scan_visible(5, 99).unwrap();
    assert_eq!(vis, vec![r1], "only the committed row is visible");
    assert_eq!(
        t2.end_ts(r1).unwrap(),
        TS_INF,
        "pending invalidation undone"
    );
}

#[test]
fn unpublished_commit_timestamps_rolled_back() {
    // A commit whose timestamps were flushed but whose global CTS publish
    // never happened must be treated as aborted.
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let root = t.root_offset();
    let r = t
        .insert_version(&row(1, "x", 0.0), mvcc::pending(1))
        .unwrap();
    t.commit_insert(r, 9).unwrap(); // cts 9, but suppose last durable cts is 3
    h.region().crash(CrashPolicy::DropUnflushed);
    let mut t2 = reopen(&h, root);
    t2.recover_mvcc(3).unwrap();
    assert!(t2.scan_visible(100, 99).unwrap().is_empty());
}

#[test]
fn insert_without_publish_invisible_after_crash() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let root = t.root_offset();
    let r = t.insert_version(&row(1, "keep", 0.0), 1).unwrap();
    assert_eq!(r, 0);
    // The second insert's row-count publish is the last durable step; here
    // we crash *between* inserts, so only row 0 must exist.
    h.region().crash(CrashPolicy::DropUnflushed);
    let t2 = reopen(&h, root);
    assert_eq!(t2.row_count(), 1);
}

#[test]
fn scan_eq_and_range_parity_with_vtable() {
    let h = heap(1 << 24);
    let mut nv = NvTable::create(&h, schema()).unwrap();
    let mut v = storage::VTable::new(schema());
    for i in 0..40i64 {
        let vals = row(i % 7, &format!("g{}", i % 3), (i % 5) as f64);
        nv.insert_version(&vals, 1).unwrap();
        v.insert_version(&vals, 1).unwrap();
    }
    // Exercise main + delta on both: merge, then add more.
    nv.merge(1).unwrap();
    v.merge(1).unwrap();
    for i in 0..20i64 {
        let vals = row(i % 7, &format!("g{}", i % 3), (i % 5) as f64);
        nv.insert_version(&vals, 2).unwrap();
        v.insert_version(&vals, 2).unwrap();
    }
    for key in 0..8i64 {
        let a = nv.scan_eq(0, &Value::Int(key), 5, 99).unwrap();
        let b = v.scan_eq(0, &Value::Int(key), 5, 99).unwrap();
        assert_eq!(a, b, "eq scan parity for key {key}");
    }
    for s in ["g0", "g1", "g2", "missing"] {
        let a = nv.scan_eq(1, &s.into(), 5, 99).unwrap();
        let b = v.scan_eq(1, &s.into(), 5, 99).unwrap();
        assert_eq!(a, b, "text eq scan parity for {s}");
    }
    let a = nv
        .scan_range(0, Some(&Value::Int(2)), Some(&Value::Int(5)), 5, 99)
        .unwrap();
    let b = v
        .scan_range(0, Some(&Value::Int(2)), Some(&Value::Int(5)), 5, 99)
        .unwrap();
    assert_eq!(a, b, "range scan parity");
    let a = nv
        .scan_range(2, None, Some(&Value::Double(3.0)), 5, 99)
        .unwrap();
    let b = v
        .scan_range(2, None, Some(&Value::Double(3.0)), 5, 99)
        .unwrap();
    assert_eq!(a, b, "double range parity");
}

#[test]
fn merge_survives_crash_after_swap() {
    let h = heap(1 << 24);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let root = t.root_offset();
    for i in 0..30i64 {
        let r = t
            .insert_version(&row(i, "m", 0.5), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, 2).unwrap();
    }
    // Invalidate ten rows before merging.
    for rid in 0..10u64 {
        t.try_invalidate(rid, mvcc::pending(3)).unwrap();
        t.commit_invalidate(rid, 4).unwrap();
    }
    let stats = t.merge(10).unwrap();
    assert_eq!(stats.rows_merged, 20);
    assert_eq!(t.main_rows(), 20);
    h.region().crash(CrashPolicy::DropUnflushed);
    let t2 = reopen(&h, root);
    assert_eq!(t2.main_rows(), 20);
    assert_eq!(t2.row_count(), 20);
    let vis = t2.scan_visible(10, 99).unwrap();
    assert_eq!(vis.len(), 20);
    // Values preserved (ks 10..30).
    let mut ks: Vec<i64> = vis
        .iter()
        .map(|&r| t2.value(r, 0).unwrap().as_int().unwrap())
        .collect();
    ks.sort();
    assert_eq!(ks, (10..30).collect::<Vec<_>>());
}

#[test]
fn merge_reclaims_old_tree() {
    let h = heap(1 << 24);
    let mut t = NvTable::create(&h, schema()).unwrap();
    for i in 0..20i64 {
        let r = t
            .insert_version(&row(i, &format!("v{i}"), 0.0), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, 2).unwrap();
    }
    t.merge(5).unwrap();
    let live_after_first: u64 = h
        .walk()
        .unwrap()
        .iter()
        .filter(|b| b.state == nvm::AllocState::Allocated)
        .count() as u64;
    // Merging again without new data should not monotonically grow the set
    // of live blocks (old trees are freed).
    t.merge(5).unwrap();
    t.merge(5).unwrap();
    let live_after_third: u64 = h
        .walk()
        .unwrap()
        .iter()
        .filter(|b| b.state == nvm::AllocState::Allocated)
        .count() as u64;
    assert!(
        live_after_third <= live_after_first + 2,
        "live blocks grew {live_after_first} -> {live_after_third}"
    );
}

#[test]
fn update_chain_across_restart() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let root = t.root_offset();
    let r1 = t
        .insert_version(&row(1, "v1", 0.0), mvcc::pending(1))
        .unwrap();
    t.commit_insert(r1, 2).unwrap();
    t.try_invalidate(r1, mvcc::pending(2)).unwrap();
    let r2 = t
        .insert_version(&row(1, "v2", 0.0), mvcc::pending(2))
        .unwrap();
    t.commit_invalidate(r1, 5).unwrap();
    t.commit_insert(r2, 5).unwrap();
    h.region().crash(CrashPolicy::DropUnflushed);
    let mut t2 = reopen(&h, root);
    t2.recover_mvcc(5).unwrap();
    assert_eq!(t2.scan_visible(4, 99).unwrap(), vec![r1]);
    assert_eq!(t2.scan_visible(5, 99).unwrap(), vec![r2]);
    assert_eq!(t2.value(r2, 1).unwrap(), Value::Text("v2".into()));
}

#[test]
fn write_conflict_detected_on_nvm() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let r = t.insert_version(&row(1, "a", 0.0), 1).unwrap();
    t.try_invalidate(r, mvcc::pending(7)).unwrap();
    assert!(matches!(
        t.try_invalidate(r, mvcc::pending(8)),
        Err(StorageError::WriteConflict { .. })
    ));
}

#[test]
fn dictionary_probe_rebuilt_after_reopen() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let root = t.root_offset();
    for i in 0..10i64 {
        let r = t
            .insert_version(&row(i % 3, "dup", 0.0), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, 1).unwrap();
    }
    h.region().crash(CrashPolicy::DropUnflushed);
    let mut t2 = reopen(&h, root);
    // Probe maps must dedupe against recovered dictionaries: inserting an
    // existing value must not grow the dictionary.
    let hits_before = t2.scan_eq(0, &Value::Int(0), 10, 99).unwrap().len();
    let r = t2
        .insert_version(&row(0, "dup", 0.0), mvcc::pending(2))
        .unwrap();
    t2.commit_insert(r, 2).unwrap();
    let hits_after = t2.scan_eq(0, &Value::Int(0), 10, 99).unwrap().len();
    assert_eq!(hits_after, hits_before + 1);
}

#[test]
fn random_eviction_crashes_still_recover() {
    // Under RandomEviction, arbitrary subsets of unflushed lines survive;
    // the publish protocol must still yield a consistent image.
    for seed in 0..8u64 {
        let h = heap(1 << 22);
        let mut t = NvTable::create(&h, schema()).unwrap();
        let root = t.root_offset();
        let mut committed = Vec::new();
        for i in 0..20i64 {
            let r = t
                .insert_version(&row(i, &format!("r{i}"), 0.0), mvcc::pending(1))
                .unwrap();
            if i % 2 == 0 {
                t.commit_insert(r, (i + 1) as u64).unwrap();
                committed.push((r, i));
            }
        }
        let last_cts = 19;
        h.region()
            .crash(CrashPolicy::RandomEviction { p: 0.5, seed });
        let mut t2 = reopen(&h, root);
        t2.recover_mvcc(last_cts).unwrap();
        let vis = t2.scan_visible(last_cts, 99).unwrap();
        assert_eq!(vis.len(), committed.len(), "seed {seed}");
        for (r, i) in &committed {
            assert_eq!(
                t2.value(*r, 0).unwrap(),
                Value::Int(*i),
                "seed {seed} row {r}"
            );
        }
    }
}

#[test]
fn verify_media_clean_table_passes() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    for i in 0..30i64 {
        let r = t
            .insert_version(&row(i, &format!("v{i}"), i as f64), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, (i + 1) as u64).unwrap();
    }
    t.merge(30).unwrap();
    for i in 30..40i64 {
        let r = t
            .insert_version(&row(i, &format!("v{i}"), i as f64), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, (i + 1) as u64).unwrap();
    }
    let checked = t.verify_media(40).unwrap();
    assert!(checked > 5, "verified {checked} structures");
}

#[test]
fn verify_media_detects_scribbled_main_column() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    for i in 0..20i64 {
        let r = t
            .insert_version(&row(i, &format!("v{i}"), i as f64), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, (i + 1) as u64).unwrap();
    }
    t.merge(20).unwrap();
    let dict = t
        .media_extents()
        .unwrap()
        .into_iter()
        .find(|e| e.what == "main-dict")
        .expect("main dictionary extent");
    assert!(dict.checksummed);
    h.region()
        .inject_fault(&nvm::FaultSpec {
            class: nvm::FaultClass::ScribbledBlock { len: 16 },
            offset: dict.offset,
            seed: 0xD1C7,
        })
        .unwrap();
    match t.verify_media(20) {
        Err(StorageError::Nvm(nvm::NvmError::ChecksumMismatch { what, .. })) => {
            assert_eq!(what, "main column");
        }
        other => panic!("expected main-column checksum mismatch, got {other:?}"),
    }
}

#[test]
fn verify_media_detects_delta_dict_fault() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    for i in 0..10i64 {
        let r = t
            .insert_version(&row(i, &format!("v{i}"), i as f64), mvcc::pending(1))
            .unwrap();
        t.commit_insert(r, (i + 1) as u64).unwrap();
    }
    let dict = t
        .media_extents()
        .unwrap()
        .into_iter()
        .find(|e| e.what == "delta-dict")
        .expect("delta dictionary extent");
    h.region()
        .inject_fault(&nvm::FaultSpec {
            class: nvm::FaultClass::BitFlip { bits: 1 },
            offset: dict.offset,
            seed: 3,
        })
        .unwrap();
    match t.verify_media(10) {
        Err(StorageError::Nvm(nvm::NvmError::ChecksumMismatch { what, .. })) => {
            assert_eq!(what, "delta dictionary");
        }
        other => panic!("expected delta-dict checksum mismatch, got {other:?}"),
    }
}

#[test]
fn verify_media_flags_implausible_timestamp() {
    let h = heap(1 << 22);
    let mut t = NvTable::create(&h, schema()).unwrap();
    let r = t
        .insert_version(&row(1, "a", 0.0), mvcc::pending(1))
        .unwrap();
    t.commit_insert(r, 2).unwrap();
    assert!(t.verify_media(2).is_ok());
    // Forge a commit timestamp far beyond the published last_cts — the
    // plausibility check must flag it even though no checksum covers it.
    let begin = t
        .media_extents()
        .unwrap()
        .into_iter()
        .find(|e| e.what == "delta-begin")
        .expect("delta begin extent");
    assert!(!begin.checksummed);
    h.region().write_pod(begin.offset, &999_999u64).unwrap();
    h.region().persist(begin.offset, 8).unwrap();
    match t.verify_media(2) {
        Err(StorageError::Corrupt { reason }) => {
            assert!(reason.contains("begin timestamp"), "{reason}");
        }
        other => panic!("expected implausible-timestamp error, got {other:?}"),
    }
}
