//! FNV-1a hashing: cheap, deterministic fingerprints.
//!
//! Used for the NVM region header checksum (torn-root detection) and for
//! whole-image fingerprints in the crash scheduler's determinism checks.

/// 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// 64-bit FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice.
pub fn fnv1a(data: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, data)
}

/// Continue an FNV-1a hash from a prior state (for chunked input).
pub fn fnv1a_continue(mut state: u64, data: &[u8]) -> u64 {
    for &b in data {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a over a sequence of `u64` words (little-endian byte order).
pub fn fnv1a_words(words: &[u64]) -> u64 {
    let mut state = FNV_OFFSET;
    for w in words {
        state = fnv1a_continue(state, &w.to_le_bytes());
    }
    state
}

/// 32-bit FNV-1a offset basis.
pub const FNV32_OFFSET: u32 = 0x811C_9DC5;
/// 32-bit FNV-1a prime.
pub const FNV32_PRIME: u32 = 0x0100_0193;

/// Continue a 32-bit FNV-1a hash from a prior state. The 32-bit variant is
/// used where a checksum must share a single 64-bit word with the value it
/// protects (packed `(checksum << 32) | payload` publish words that stay
/// 8-byte-store atomic).
pub fn fnv1a32_continue(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state ^= b as u32;
        state = state.wrapping_mul(FNV32_PRIME);
    }
    state
}

/// 32-bit FNV-1a over a byte slice.
pub fn fnv1a32(data: &[u8]) -> u32 {
    fnv1a32_continue(FNV32_OFFSET, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn word_hash_sensitive_to_every_word() {
        let a = fnv1a_words(&[1, 2, 3]);
        assert_ne!(a, fnv1a_words(&[1, 2, 4]));
        assert_ne!(a, fnv1a_words(&[0, 2, 3]));
        assert_eq!(a, fnv1a_words(&[1, 2, 3]));
    }
}
