//! Non-poisoning `Mutex`/`RwLock` with the `parking_lot` calling
//! convention: `lock()`/`read()`/`write()` return guards directly.
//!
//! Lock poisoning is the wrong default for this codebase: a panic inside
//! one property-test case must not turn every later acquisition into a
//! second, unrelated panic. These wrappers recover the inner guard from a
//! poisoned `std::sync` lock.

/// Mutual exclusion, `parking_lot`-style API over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, `parking_lot`-style API over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
