//! Seeded pseudo-random numbers (xoshiro256++).
//!
//! Everything that samples randomness in this workspace — workload
//! generators, crash-eviction policies, the torture scheduler — must be
//! replayable from a `u64` seed, so the generator and every derived sampler
//! are fully deterministic and platform-independent.

/// Uniform sampling helpers over a raw 64-bit generator.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if `lo >= hi`.
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); the retry loop terminates fast.
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let (hi128, lo128) = {
                let wide = (x as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo128 >= zone {
                return lo + hi128;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.gen_range_u64(0, hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }
}

/// xoshiro256++ generator seeded through SplitMix64.
///
/// Small state, very fast, and passes the usual statistical batteries —
/// a drop-in for the `rand` crate's generator of the same name.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed the full 256-bit state from one `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&x));
            let y = r.gen_range_i64(-5, 5);
            assert!((-5..5).contains(&y));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "hits {hits}");
    }
}
