//! Bounded replay-artifact writer for the torture harnesses.
//!
//! Every torture suite appends one JSONL line per failure so a violation
//! reproduces with a single targeted run. Unbounded append-only files grow
//! without limit when a flaky environment re-hits the same seed, so this
//! writer (a) **dedupes** by `(suite, seed)` — a new line for a seed the
//! file already records replaces the old one — and (b) **rotates**: the
//! file keeps at most [`MAX_LINES`] lines, dropping the oldest first.

use std::io::Write as _;
use std::path::Path;

/// Hard cap on lines per repro file; the oldest lines rotate out first.
pub const MAX_LINES: usize = 256;

/// Append a repro line for `(suite, seed)` to `path`, replacing any earlier
/// line for the same suite+seed and truncating the file to the newest
/// [`MAX_LINES`] entries. `extra` pairs are appended after the `suite` and
/// `seed` fields. Errors are swallowed (a repro writer must never turn a
/// real failure into an IO panic); returns false when nothing was written.
pub fn write<'a>(
    path: &Path,
    suite: &str,
    seed: u64,
    extra: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> bool {
    let seed_s = seed.to_string();
    let extra: Vec<(&str, &str)> = extra.into_iter().collect();
    let mut pairs: Vec<(&str, &str)> = vec![("suite", suite), ("seed", seed_s.as_str())];
    pairs.extend(extra.iter().copied());
    let line = crate::json::object(pairs);

    // The dedupe key as it appears in a serialized line. Keys are emitted
    // in order with `suite` first and `seed` second, so matching on this
    // prefix is exact, not a substring heuristic.
    let key = crate::json::object([("suite", suite), ("seed", seed_s.as_str())]);
    let key_prefix = &key[..key.len() - 1]; // drop the closing brace

    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .map(|s| {
            s.lines()
                .filter(|l| !l.trim().is_empty() && !l.starts_with(key_prefix))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    lines.push(line);
    if lines.len() > MAX_LINES {
        let drop = lines.len() - MAX_LINES;
        lines.drain(..drop);
    }

    let tmp = path.with_extension("jsonl.tmp");
    let write_all = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        for l in &lines {
            writeln!(f, "{l}")?;
        }
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write_all().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("repro-{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn lines(p: &Path) -> Vec<String> {
        std::fs::read_to_string(p)
            .unwrap_or_default()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn dedupes_by_suite_and_seed() {
        let p = tmp("dedupe");
        assert!(write(&p, "s", 1, [("detail", "first")]));
        assert!(write(&p, "s", 2, [("detail", "other")]));
        assert!(write(&p, "s", 1, [("detail", "second")]));
        let ls = lines(&p);
        assert_eq!(ls.len(), 2, "{ls:?}");
        assert!(ls[1].contains("\"seed\":\"1\"") && ls[1].contains("second"));
        assert!(!ls.iter().any(|l| l.contains("first")));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn distinct_suites_share_a_file_without_clobbering() {
        let p = tmp("suites");
        write(&p, "a", 7, [("detail", "x")]);
        write(&p, "b", 7, [("detail", "y")]);
        assert_eq!(lines(&p).len(), 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rotates_oldest_lines_out() {
        let p = tmp("rotate");
        for seed in 0..(MAX_LINES as u64 + 10) {
            write(&p, "s", seed, [("detail", "d")]);
        }
        let ls = lines(&p);
        assert_eq!(ls.len(), MAX_LINES);
        assert!(ls[0].contains("\"seed\":\"10\""));
        assert!(ls
            .last()
            .unwrap()
            .contains(&format!("\"seed\":\"{}\"", MAX_LINES as u64 + 9)));
        let _ = std::fs::remove_file(&p);
    }
}
