//! Little-endian byte encoding/decoding for the WAL codecs.
//!
//! A minimal stand-in for the `bytes` crate: [`ByteBuf`] accumulates writes
//! into a `Vec<u8>`; [`BufRead`] consumes from a `&[u8]` cursor exactly the
//! way `bytes::Buf` does (the slice itself is the cursor).

/// Growable little-endian byte writer.
#[derive(Debug, Default, Clone)]
pub struct ByteBuf(Vec<u8>);

impl ByteBuf {
    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> ByteBuf {
        ByteBuf(Vec::with_capacity(cap))
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64_le(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64`, little-endian IEEE-754 bits.
    pub fn put_f64_le(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.0.extend_from_slice(s);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Finish, yielding the accumulated bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }

    /// Borrow the accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

/// Cursor-style little-endian reads off a `&[u8]`.
///
/// Implemented for `&[u8]` so a `&mut &[u8]` advances through the slice as
/// it reads, mirroring `bytes::Buf`. The `get_*` methods panic when the
/// slice is too short — callers must check [`BufRead::remaining`] first,
/// exactly as with `bytes`.
pub trait BufRead {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl BufRead for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut b = ByteBuf::with_capacity(64);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_i64_le(-42);
        b.put_f64_le(0.25);
        b.put_slice(b"xyz");
        let v = b.into_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 0.25);
        assert_eq!(r, b"xyz");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }
}
