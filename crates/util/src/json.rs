//! Minimal JSON emission for benchmark result archival.
//!
//! Only what `results/*.jsonl` needs: string-to-string objects with
//! correctly escaped keys and values.

/// Escape `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize ordered `(key, value)` string pairs as one JSON object.
pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":\"");
        out.push_str(&escape(v));
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_formatting() {
        let s = object([("a", "1"), ("b", "x\"y")]);
        assert_eq!(s, r#"{"a":"1","b":"x\"y"}"#);
        assert_eq!(object([]), "{}");
    }
}
