#![warn(missing_docs)]

//! Dependency-free support code shared across the workspace.
//!
//! The build must work with no network access and no vendored registry, so
//! the handful of external crates the engine used to lean on (`rand`,
//! `parking_lot`, `bytes`, `serde_json`) are replaced by the small, exact
//! subsets implemented here:
//!
//! * [`rng`] — a seeded xoshiro256++ PRNG with the uniform-sampling helpers
//!   the workloads and crash fuzzers need. Deterministic under seed, which
//!   the crash-replay artifacts rely on.
//! * [`sync`] — `Mutex`/`RwLock` wrappers over `std::sync` that ignore
//!   poisoning (a panicking test must not cascade into every later lock).
//! * [`buf`] — little-endian byte writer/reader for the WAL record and
//!   checkpoint codecs.
//! * [`json`] — just enough JSON emission for the benchmark result rows.
//! * [`hash`] — FNV-1a, used for image fingerprints and header checksums.
//! * [`repro`] — bounded, deduplicating JSONL replay-artifact writer shared
//!   by the torture suites (keeps `results/` from growing without limit).

pub mod buf;
pub mod hash;
pub mod json;
pub mod repro;
pub mod rng;
pub mod sync;

pub use rng::{Rng, SmallRng};
