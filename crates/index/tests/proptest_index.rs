//! Differential property tests: persistent indexes vs in-memory models,
//! including crash/reopen cycles.

use std::collections::BTreeMap;
use std::sync::Arc;

use index::{NvHashIndex, NvOrderedIndex};
use nvm::{CrashPolicy, LatencyModel, NvmHeap, NvmRegion};
use proptest::prelude::*;
use storage::{DataType, Value};

fn heap() -> NvmHeap {
    NvmHeap::format(Arc::new(NvmRegion::new(1 << 24, LatencyModel::zero()))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The skip list agrees with a BTreeMap model on every point and range
    /// probe, before and after a crash.
    #[test]
    fn ordered_index_matches_btreemap(
        keys in proptest::collection::vec(-50i64..50, 1..120),
        probes in proptest::collection::vec((-60i64..60, 0i64..30), 1..20),
    ) {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        let desc = idx.desc_offset();
        let mut model: BTreeMap<i64, Vec<u64>> = BTreeMap::new();
        for (row, k) in keys.iter().enumerate() {
            idx.insert(&Value::Int(*k), row as u64).unwrap();
            model.entry(*k).or_default().push(row as u64);
        }
        h.region().crash(CrashPolicy::DropUnflushed);
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let idx = NvOrderedIndex::open(&h2, desc).unwrap();

        for (lo, width) in &probes {
            let hi = lo + width;
            let mut got = idx
                .lookup_range(Some(&Value::Int(*lo)), Some(&Value::Int(hi)))
                .unwrap();
            got.sort();
            let mut want: Vec<u64> = model
                .range(*lo..hi)
                .flat_map(|(_, rows)| rows.iter().copied())
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "range [{}, {})", lo, hi);

            let mut got = idx.lookup(&Value::Int(*lo)).unwrap();
            got.sort();
            let want = model.get(lo).cloned().unwrap_or_default();
            prop_assert_eq!(got, want, "point {}", lo);
        }
    }

    /// Text-keyed skip list agrees with a BTreeMap<String, _> model.
    #[test]
    fn ordered_text_index_matches_model(
        keys in proptest::collection::vec("[a-e]{1,4}", 1..60),
    ) {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Text).unwrap();
        let mut model: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (row, k) in keys.iter().enumerate() {
            idx.insert(&Value::Text(k.clone()), row as u64).unwrap();
            model.entry(k.clone()).or_default().push(row as u64);
        }
        for k in model.keys() {
            let mut got = idx.lookup(&Value::Text(k.clone())).unwrap();
            got.sort();
            prop_assert_eq!(&got, &model[k]);
        }
        // Full ordered walk covers everything exactly once.
        let all = idx.lookup_range(None, None).unwrap();
        prop_assert_eq!(all.len(), keys.len());
    }

    /// Hash and ordered indexes agree with each other on point probes under
    /// identical histories, across a crash with random eviction.
    #[test]
    fn hash_and_ordered_agree(
        keys in proptest::collection::vec(0i64..40, 1..100),
        seed in any::<u64>(),
    ) {
        let h = heap();
        let hash = NvHashIndex::create(&h, 0, 64).unwrap();
        let ord = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        let (hd, od) = (hash.desc_offset(), ord.desc_offset());
        for (row, k) in keys.iter().enumerate() {
            hash.insert(&Value::Int(*k), row as u64).unwrap();
            ord.insert(&Value::Int(*k), row as u64).unwrap();
        }
        h.region().crash(CrashPolicy::RandomEviction { p: 0.5, seed });
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let hash = NvHashIndex::open(&h2, hd).unwrap();
        let ord = NvOrderedIndex::open(&h2, od).unwrap();
        for k in 0..41i64 {
            let mut a = hash.lookup(&Value::Int(k)).unwrap();
            let mut b = ord.lookup(&Value::Int(k)).unwrap();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "key {}", k);
        }
    }
}
