//! Differential randomized tests: persistent indexes vs in-memory models,
//! including crash/reopen cycles. Seeded in-tree RNG, so every case
//! reproduces exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use index::{NvHashIndex, NvOrderedIndex};
use nvm::{CrashPolicy, LatencyModel, NvmHeap, NvmRegion};
use storage::{DataType, Value};
use util::rng::{Rng, SmallRng};

fn heap() -> NvmHeap {
    NvmHeap::format(Arc::new(NvmRegion::new(1 << 24, LatencyModel::zero()))).unwrap()
}

/// The skip list agrees with a BTreeMap model on every point and range
/// probe, before and after a crash.
#[test]
fn ordered_index_matches_btreemap() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x0DE2 ^ case);
        let keys: Vec<i64> = (0..rng.gen_range_usize(1, 120))
            .map(|_| rng.gen_range_i64(-50, 50))
            .collect();
        let probes: Vec<(i64, i64)> = (0..rng.gen_range_usize(1, 20))
            .map(|_| (rng.gen_range_i64(-60, 60), rng.gen_range_i64(0, 30)))
            .collect();
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        let desc = idx.desc_offset();
        let mut model: BTreeMap<i64, Vec<u64>> = BTreeMap::new();
        for (row, k) in keys.iter().enumerate() {
            idx.insert(&Value::Int(*k), row as u64).unwrap();
            model.entry(*k).or_default().push(row as u64);
        }
        h.region().crash(CrashPolicy::DropUnflushed);
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let idx = NvOrderedIndex::open(&h2, desc).unwrap();

        for (lo, width) in &probes {
            let hi = lo + width;
            let mut got = idx
                .lookup_range(Some(&Value::Int(*lo)), Some(&Value::Int(hi)))
                .unwrap();
            got.sort();
            let mut want: Vec<u64> = model
                .range(*lo..hi)
                .flat_map(|(_, rows)| rows.iter().copied())
                .collect();
            want.sort();
            assert_eq!(got, want, "case {case} range [{lo}, {hi})");

            let mut got = idx.lookup(&Value::Int(*lo)).unwrap();
            got.sort();
            let want = model.get(lo).cloned().unwrap_or_default();
            assert_eq!(got, want, "case {case} point {lo}");
        }
    }
}

/// Text-keyed skip list agrees with a BTreeMap<String, _> model.
#[test]
fn ordered_text_index_matches_model() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x7E87 ^ case);
        // Short strings over a 5-letter alphabet, like the `[a-e]{1,4}`
        // pattern this replaces: plenty of duplicates and shared prefixes.
        let keys: Vec<String> = (0..rng.gen_range_usize(1, 60))
            .map(|_| {
                let len = rng.gen_range_usize(1, 5);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range_u64(0, 5) as u8) as char)
                    .collect()
            })
            .collect();
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Text).unwrap();
        let mut model: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (row, k) in keys.iter().enumerate() {
            idx.insert(&Value::Text(k.clone()), row as u64).unwrap();
            model.entry(k.clone()).or_default().push(row as u64);
        }
        for k in model.keys() {
            let mut got = idx.lookup(&Value::Text(k.clone())).unwrap();
            got.sort();
            assert_eq!(&got, &model[k], "case {case} key {k}");
        }
        // Full ordered walk covers everything exactly once.
        let all = idx.lookup_range(None, None).unwrap();
        assert_eq!(all.len(), keys.len(), "case {case}");
    }
}

/// Hash and ordered indexes agree with each other on point probes under
/// identical histories, across a crash with random eviction.
#[test]
fn hash_and_ordered_agree() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xA9EE ^ case);
        let keys: Vec<i64> = (0..rng.gen_range_usize(1, 100))
            .map(|_| rng.gen_range_i64(0, 40))
            .collect();
        let seed = rng.next_u64();
        let h = heap();
        let hash = NvHashIndex::create(&h, 0, 64).unwrap();
        let ord = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        let (hd, od) = (hash.desc_offset(), ord.desc_offset());
        for (row, k) in keys.iter().enumerate() {
            hash.insert(&Value::Int(*k), row as u64).unwrap();
            ord.insert(&Value::Int(*k), row as u64).unwrap();
        }
        h.region()
            .crash(CrashPolicy::RandomEviction { p: 0.5, seed });
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let hash = NvHashIndex::open(&h2, hd).unwrap();
        let ord = NvOrderedIndex::open(&h2, od).unwrap();
        for k in 0..41i64 {
            let mut a = hash.lookup(&Value::Int(k)).unwrap();
            let mut b = ord.lookup(&Value::Int(k)).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "case {case} key {k}");
        }
    }
}
