//! Persistent multi-version *ordered* index on NVM: a crash-safe skip
//! list.
//!
//! Layout:
//!
//! ```text
//! Desc block: head[MAX_HEIGHT] | column | count | pool_head | pool_used
//!             | key blob PVec<u8> header
//! Node (fixed 96 B, pooled): key u64 | row u64 | height u64
//!                            | next[MAX_HEIGHT] u64 | checksum u64
//! ```
//!
//! Keys are stored order-preservingly: `Int` via sign-flip encoding,
//! `Double` via the standard monotone float encoding, `Text` as local
//! offsets into a per-index byte blob (compared by content).
//!
//! ## Crash safety without a recovery pass
//!
//! The **level-0 linked list is the sole source of truth**; levels ≥ 1 are
//! an acceleration structure. An insert writes and flushes the whole node
//! (with its `next` pointers already aimed at the successors), then
//! publishes it with one 8-byte durable store into the level-0 predecessor.
//! The upper-level links follow best-effort: a crash between them leaves a
//! node that is merely *under-indexed* — still found by every search, since
//! searches always finish on level 0. Nothing to repair on restart; the
//! index is re-attached O(1), exactly like the hash index.
//!
//! Like all indexes here it is multi-version: one entry per physical row
//! version; readers filter through MVCC and merges rebuild it wholesale.

use nvm::{NvmHeap, PVec, PVEC_HEADER};
use storage::{DataType, Result, RowId, StorageError, Value};

/// Maximum tower height (fixed node size keeps nodes poolable).
pub const MAX_HEIGHT: u64 = 8;

/// Nodes per pool block.
pub const ORD_POOL_ENTRIES: u64 = 512;

const NODE_KEY: u64 = 0;
const NODE_ROW: u64 = 8;
const NODE_HEIGHT: u64 = 16;
const NODE_NEXT: u64 = 24;
/// FNV-1a checksum over the node's *immutable* words (key, row, height).
/// The `next` tower is excluded: later inserts rewrite those slots in place,
/// and resealing on every neighbour splice would break the single-store
/// publish protocol.
const NODE_SUM: u64 = NODE_NEXT + MAX_HEIGHT * 8;
const NODE_SIZE: u64 = NODE_SUM + 8;

fn node_sum(key: u64, row: u64, height: u64) -> u64 {
    util::hash::fnv1a_words(&[key, row, height])
}

const D_HEAD: u64 = 0; // MAX_HEIGHT words
const D_COLUMN: u64 = D_HEAD + MAX_HEIGHT * 8;
const D_COUNT: u64 = D_COLUMN + 8;
const D_POOL_HEAD: u64 = D_COUNT + 8;
const D_POOL_USED: u64 = D_POOL_HEAD + 8;
const D_BLOB: u64 = D_POOL_USED + 8;
/// Byte size of the persistent descriptor block.
pub const NVORDERED_DESC_SIZE: u64 = D_BLOB + PVEC_HEADER;

const POOL_HDR: u64 = 8;
const POOL_BYTES: u64 = POOL_HDR + ORD_POOL_ENTRIES * NODE_SIZE;

/// Order-preserving 64-bit encoding of a fixed-width key.
fn encode_fixed(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => Some((*i as u64) ^ (1 << 63)),
        Value::Double(d) => {
            let bits = d.to_bits();
            // Standard monotone transform: flip all bits for negatives,
            // flip the sign bit for positives.
            Some(if bits >> 63 == 1 {
                !bits
            } else {
                bits ^ (1 << 63)
            })
        }
        Value::Text(_) => None,
    }
}

/// Handle to a persistent ordered index. Re-attach after restart with
/// [`NvOrderedIndex::open`] — O(1), no scan, no rebuild.
#[derive(Debug, Clone)]
pub struct NvOrderedIndex {
    heap: NvmHeap,
    desc: u64,
    column: usize,
    dtype: DataType,
    blob: PVec<u8>,
}

impl NvOrderedIndex {
    /// Create a fresh index over `column` of declared type `dtype`.
    pub fn create(heap: &NvmHeap, column: usize, dtype: DataType) -> Result<NvOrderedIndex> {
        let region = heap.region();
        let desc = heap.alloc(NVORDERED_DESC_SIZE)?;
        for l in 0..MAX_HEIGHT {
            region.write_pod(desc + D_HEAD + l * 8, &0u64)?;
        }
        // Column word also carries the type tag in its high byte so `open`
        // is self-contained.
        region.write_pod(
            desc + D_COLUMN,
            &((dtype.tag() as u64) << 56 | column as u64),
        )?;
        region.write_pod(desc + D_COUNT, &0u64)?;
        region.write_pod(desc + D_POOL_HEAD, &0u64)?;
        region.write_pod(desc + D_POOL_USED, &ORD_POOL_ENTRIES)?;
        region.persist(desc, NVORDERED_DESC_SIZE)?;
        let blob = PVec::<u8>::create(heap, desc + D_BLOB, 64)?;
        Ok(NvOrderedIndex {
            heap: heap.clone(),
            desc,
            column,
            dtype,
            blob,
        })
    }

    /// Re-attach to an existing index by descriptor offset.
    pub fn open(heap: &NvmHeap, desc: u64) -> Result<NvOrderedIndex> {
        let region = heap.region();
        let colword: u64 = region.read_pod(desc + D_COLUMN)?;
        let dtype = DataType::from_tag((colword >> 56) as u8).ok_or(StorageError::Corrupt {
            reason: "unknown type tag in ordered index descriptor",
        })?;
        Ok(NvOrderedIndex {
            heap: heap.clone(),
            desc,
            column: (colword & 0x00FF_FFFF_FFFF_FFFF) as usize,
            dtype,
            blob: PVec::open(desc + D_BLOB),
        })
    }

    /// Descriptor offset (for cataloguing).
    pub fn desc_offset(&self) -> u64 {
        self.desc
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Number of entries.
    pub fn len(&self) -> Result<u64> {
        Ok(self.heap.region().read_pod(self.desc + D_COUNT)?)
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Encode a key for storage; text keys are appended to the blob.
    fn encode_key(&self, v: &Value) -> Result<u64> {
        if let Some(w) = encode_fixed(v) {
            return Ok(w);
        }
        let s = v.as_text().ok_or(StorageError::TypeMismatch {
            column: self.column,
            expected: self.dtype,
        })?;
        let mut run = Vec::with_capacity(4 + s.len());
        run.extend_from_slice(&(s.len() as u32).to_le_bytes());
        run.extend_from_slice(s.as_bytes());
        Ok(self.blob.append_bytes(&self.heap, &run)?)
    }

    /// Compare a stored key word against a probe value.
    fn cmp_key(&self, stored: u64, probe: &Value) -> Result<std::cmp::Ordering> {
        match self.dtype {
            DataType::Int | DataType::Double => {
                let pw = encode_fixed(probe).ok_or(StorageError::TypeMismatch {
                    column: self.column,
                    expected: self.dtype,
                })?;
                Ok(stored.cmp(&pw))
            }
            DataType::Text => {
                let region = self.heap.region();
                let len_bytes = self.blob.read_bytes_at(region, stored, 4)?;
                let n =
                    u32::from_le_bytes(len_bytes.try_into().map_err(|_| StorageError::Corrupt {
                        reason: "truncated index blob length prefix",
                    })?) as u64;
                let bytes = self.blob.read_bytes_at(region, stored + 4, n)?;
                let probe_s = probe.as_text().ok_or(StorageError::TypeMismatch {
                    column: self.column,
                    expected: self.dtype,
                })?;
                Ok(bytes.as_slice().cmp(probe_s.as_bytes()))
            }
        }
    }

    /// Deterministic pseudo-random tower height from the entry count.
    fn height_for(&self, count: u64) -> u64 {
        let mut x = count
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xA24B_1741);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        ((x.trailing_ones() as u64 / 2) + 1).min(MAX_HEIGHT)
    }

    /// Sub-allocate one node slot from the pool.
    fn alloc_node(&self) -> Result<u64> {
        let region = self.heap.region();
        let used: u64 = region.read_pod(self.desc + D_POOL_USED)?;
        let head: u64 = region.read_pod(self.desc + D_POOL_HEAD)?;
        let (pool, slot) = if used >= ORD_POOL_ENTRIES || head == 0 {
            let pool = self.heap.reserve(POOL_BYTES)?;
            region.write_pod(pool, &head)?;
            region.persist(pool, 8)?;
            self.heap
                .activate(pool, Some((self.desc + D_POOL_HEAD, pool)), None)?;
            (pool, 0u64)
        } else {
            (head, used)
        };
        region.write_pod(self.desc + D_POOL_USED, &(slot + 1))?;
        region.persist(self.desc + D_POOL_USED, 8)?;
        Ok(pool + POOL_HDR + slot * NODE_SIZE)
    }

    /// Pointer slot holding `next` at `level` for a node (or the head).
    fn next_slot(&self, node: u64, level: u64) -> u64 {
        if node == 0 {
            self.desc + D_HEAD + level * 8
        } else {
            node + NODE_NEXT + level * 8
        }
    }

    /// Find, per level, the last node (0 = head) whose key is `< probe`
    /// (strictly, so inserts go after equal keys and range scans start at
    /// the first equal entry).
    fn predecessors(&self, probe: &Value) -> Result<[u64; MAX_HEIGHT as usize]> {
        let region = self.heap.region();
        let mut preds = [0u64; MAX_HEIGHT as usize];
        let mut cur = 0u64; // head
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                let next: u64 = region.read_pod(self.next_slot(cur, level))?;
                if next == 0 {
                    break;
                }
                let key: u64 = region.read_pod(next + NODE_KEY)?;
                if self.cmp_key(key, probe)? == std::cmp::Ordering::Less {
                    cur = next;
                } else {
                    break;
                }
            }
            preds[level as usize] = cur;
        }
        Ok(preds)
    }

    /// Register a new row version carrying `value`. Crash-atomic: the
    /// level-0 publish is one 8-byte durable store; upper links are
    /// best-effort acceleration.
    pub fn insert(&self, value: &Value, row: RowId) -> Result<()> {
        let region = self.heap.region();
        let key = self.encode_key(value)?;
        let count: u64 = region.read_pod(self.desc + D_COUNT)?;
        let height = self.height_for(count);
        let preds = self.predecessors(value)?;

        let node = self.alloc_node()?;
        region.write_pod(node + NODE_KEY, &key)?;
        region.write_pod(node + NODE_ROW, &row)?;
        region.write_pod(node + NODE_HEIGHT, &height)?;
        region.write_pod(node + NODE_SUM, &node_sum(key, row, height))?;
        for l in 0..MAX_HEIGHT {
            let succ: u64 = if l < height {
                region.read_pod(self.next_slot(preds[l as usize], l))?
            } else {
                0
            };
            region.write_pod(node + NODE_NEXT + l * 8, &succ)?;
        }
        region.persist(node, NODE_SIZE)?;

        // Publish at level 0 (the durable truth).
        let slot0 = self.next_slot(preds[0], 0);
        region.write_pod(slot0, &node)?;
        region.persist(slot0, 8)?;
        // Best-effort upper links + count.
        for l in 1..height {
            let slot = self.next_slot(preds[l as usize], l);
            region.write_pod(slot, &node)?;
            region.persist(slot, 8)?;
        }
        region.write_pod(self.desc + D_COUNT, &(count + 1))?;
        region.persist(self.desc + D_COUNT, 8)?;
        Ok(())
    }

    /// Candidate rows with key exactly `value`, in insertion order among
    /// equals is *not* guaranteed (callers treat results as a set and apply
    /// MVCC + verification).
    pub fn lookup(&self, value: &Value) -> Result<Vec<RowId>> {
        let region = self.heap.region();
        let preds = self.predecessors(value)?;
        let mut cur: u64 = region.read_pod(self.next_slot(preds[0], 0))?;
        let mut out = Vec::new();
        while cur != 0 {
            let key: u64 = region.read_pod(cur + NODE_KEY)?;
            match self.cmp_key(key, value)? {
                std::cmp::Ordering::Equal => out.push(region.read_pod(cur + NODE_ROW)?),
                std::cmp::Ordering::Greater => break,
                // A key below the probe after a predecessor search means a
                // broken list order — corruption, not a programming error.
                std::cmp::Ordering::Less => {
                    return Err(StorageError::Corrupt {
                        reason: "skiplist order violated after predecessor search",
                    })
                }
            }
            cur = region.read_pod(cur + NODE_NEXT)?;
        }
        Ok(out)
    }

    /// Candidate rows with `lo <= key < hi` (either bound optional).
    pub fn lookup_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Result<Vec<RowId>> {
        let region = self.heap.region();
        let mut cur: u64 = match lo {
            Some(v) => {
                let preds = self.predecessors(v)?;
                region.read_pod(self.next_slot(preds[0], 0))?
            }
            None => region.read_pod(self.desc + D_HEAD)?,
        };
        let mut out = Vec::new();
        while cur != 0 {
            if let Some(h) = hi {
                let key: u64 = region.read_pod(cur + NODE_KEY)?;
                if self.cmp_key(key, h)? != std::cmp::Ordering::Less {
                    break;
                }
            }
            out.push(region.read_pod(cur + NODE_ROW)?);
            cur = region.read_pod(cur + NODE_NEXT)?;
        }
        Ok(out)
    }

    /// Free pool chain, blob, and descriptor (merge-time replacement).
    pub fn destroy(self) -> Result<()> {
        let region = self.heap.region().clone();
        let mut pool: u64 = region.read_pod(self.desc + D_POOL_HEAD)?;
        while pool != 0 {
            let next: u64 = region.read_pod(pool)?;
            self.heap.free(pool, None)?;
            pool = next;
        }
        let blob_data = self.blob.data_offset(&region)?;
        if blob_data != 0 {
            self.heap.free(blob_data, None)?;
        }
        self.heap.free(self.desc, None)?;
        Ok(())
    }

    /// The labelled persistent extents of this index — one checksummed run
    /// per skip-list node, for media-fault harnesses that target real bytes
    /// (the file-backed backend corrupts these offsets in the closed image
    /// file to force a rung-1 rebuild).
    pub fn media_extents(&self) -> Result<Vec<storage::nv::MediaExtent>> {
        let region = self.heap.region();
        let mut out = Vec::new();
        let mut cur: u64 = region.read_pod(self.desc + D_HEAD)?;
        let mut hops = 0u64;
        while cur != 0 {
            if hops > 1 << 32 {
                return Err(StorageError::Corrupt {
                    reason: "ordered index level-0 cycle",
                });
            }
            hops += 1;
            out.push(storage::nv::MediaExtent {
                what: "ordered-index-node",
                offset: cur,
                len: NODE_SIZE,
                checksummed: true,
            });
            cur = region.read_pod(cur + NODE_NEXT)?;
        }
        Ok(out)
    }

    /// Check index↔table agreement: walk the level-0 list (the durable
    /// truth) verifying order, bounds, and that each entry's key equals its
    /// row's current column value; then confirm every physical table row is
    /// reachable through a lookup of its key. Used by the crash-torture
    /// harness after each recovery.
    pub fn verify_against(&self, table: &dyn storage::TableStore) -> Result<crate::IndexCheck> {
        let region = self.heap.region();
        let nrows = table.row_count();
        let mut check = crate::IndexCheck::default();
        let mut cur: u64 = region.read_pod(self.desc + D_HEAD)?;
        let mut prev_key: Option<u64> = None;
        let mut hops = 0u64;
        while cur != 0 {
            if hops > 1 << 32 {
                return Err(StorageError::Corrupt {
                    reason: "ordered index level-0 cycle",
                });
            }
            hops += 1;
            check.entries += 1;
            let key: u64 = region.read_pod(cur + NODE_KEY)?;
            let row: u64 = region.read_pod(cur + NODE_ROW)?;
            let height: u64 = region.read_pod(cur + NODE_HEIGHT)?;
            let stored: u64 = region.read_pod(cur + NODE_SUM)?;
            let computed = node_sum(key, row, height);
            if stored != computed {
                return Err(StorageError::Nvm(nvm::NvmError::ChecksumMismatch {
                    what: "ordered index node",
                    offset: cur,
                    stored,
                    computed,
                }));
            }
            if row >= nrows {
                check.dangling += 1;
            } else {
                let v = table.value(row, self.column)?;
                if self.cmp_key(key, &v)? != std::cmp::Ordering::Equal {
                    check.stale_keys += 1;
                }
            }
            if let Some(p) = prev_key {
                // Fixed-width keys are order-preserving words; text keys
                // are blob offsets and are skipped here (order is enforced
                // by the insert path's predecessor search).
                if self.dtype != DataType::Text && key < p {
                    return Err(StorageError::Corrupt {
                        reason: "ordered index level-0 out of order",
                    });
                }
            }
            prev_key = Some(key);
            cur = region.read_pod(cur + NODE_NEXT)?;
        }
        for row in 0..nrows {
            // Aborted inserts never published an index entry; see the same
            // exemption in the hash index's check.
            if table.begin_ts(row)? == storage::mvcc::TS_ABORTED {
                continue;
            }
            let v = table.value(row, self.column)?;
            if !self.lookup(&v)?.contains(&row) {
                check.missing_rows += 1;
            }
        }
        Ok(check)
    }

    /// Bulk-build over every physical row of `table`'s indexed column.
    pub fn build_from(
        heap: &NvmHeap,
        table: &dyn storage::TableStore,
        column: usize,
    ) -> Result<NvOrderedIndex> {
        let dtype = table.schema().column(column)?.dtype;
        let nrows = table.row_count();
        Self::build_with(heap, column, dtype, nrows, |row| table.value(row, column))
    }

    /// Bulk-build over in-memory rows whose index id is their position —
    /// the shape of a planned merge's survivor list, letting the
    /// replacement index be built *before* the merge publishes.
    pub fn build_from_rows(
        heap: &NvmHeap,
        column: usize,
        dtype: DataType,
        rows: &[Vec<Value>],
    ) -> Result<NvOrderedIndex> {
        Self::build_with(heap, column, dtype, rows.len() as u64, |row| {
            rows[row as usize]
                .get(column)
                .cloned()
                .ok_or(StorageError::Corrupt {
                    reason: "planned row narrower than the indexed column",
                })
        })
    }

    /// Shared bulk-build loop. On any failure the partially built index is
    /// destroyed before the error propagates — a capacity-failed build
    /// must not leak its allocations.
    fn build_with(
        heap: &NvmHeap,
        column: usize,
        dtype: DataType,
        nrows: u64,
        mut value_of: impl FnMut(u64) -> storage::Result<Value>,
    ) -> Result<NvOrderedIndex> {
        let idx = NvOrderedIndex::create(heap, column, dtype)?;
        let filled: Result<()> = (|| {
            for row in 0..nrows {
                let v = value_of(row)?;
                idx.insert(&v, row)?;
            }
            Ok(())
        })();
        if let Err(e) = filled {
            let _ = idx.destroy();
            return Err(e);
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::{CrashPolicy, LatencyModel, NvmRegion};
    use std::sync::Arc;

    fn heap() -> NvmHeap {
        NvmHeap::format(Arc::new(NvmRegion::new(1 << 24, LatencyModel::zero()))).unwrap()
    }

    #[test]
    fn ordered_iteration_over_ints_including_negatives() {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        let keys = [5i64, -3, 99, 0, -88, 42, 7];
        for (r, k) in keys.iter().enumerate() {
            idx.insert(&Value::Int(*k), r as u64).unwrap();
        }
        let rows = idx.lookup_range(None, None).unwrap();
        let got: Vec<i64> = rows.iter().map(|r| keys[*r as usize]).collect();
        let mut want = keys.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn range_semantics_inclusive_exclusive() {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        for k in 0..20i64 {
            idx.insert(&Value::Int(k), k as u64).unwrap();
        }
        let rows = idx
            .lookup_range(Some(&Value::Int(5)), Some(&Value::Int(9)))
            .unwrap();
        assert_eq!(rows, vec![5, 6, 7, 8]);
        let rows = idx.lookup_range(Some(&Value::Int(18)), None).unwrap();
        assert_eq!(rows, vec![18, 19]);
        let rows = idx.lookup_range(None, Some(&Value::Int(2))).unwrap();
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn doubles_order_preserved() {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Double).unwrap();
        let keys = [1.5f64, -2.25, 0.0, -0.5, 1e9, -1e9];
        for (r, k) in keys.iter().enumerate() {
            idx.insert(&Value::Double(*k), r as u64).unwrap();
        }
        let rows = idx.lookup_range(None, None).unwrap();
        let got: Vec<f64> = rows.iter().map(|r| keys[*r as usize]).collect();
        let mut want = keys.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn text_keys_compare_by_content() {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 1, DataType::Text).unwrap();
        for (r, s) in ["mango", "apple", "zebra", "banana"].iter().enumerate() {
            idx.insert(&Value::Text(s.to_string()), r as u64).unwrap();
        }
        let rows = idx
            .lookup_range(Some(&"b".into()), Some(&"n".into()))
            .unwrap();
        assert_eq!(rows, vec![3, 0]); // banana, mango
        assert_eq!(idx.lookup(&"apple".into()).unwrap(), vec![1]);
        assert!(idx.lookup(&"missing".into()).unwrap().is_empty());
    }

    #[test]
    fn duplicates_all_returned() {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        for r in 0..10u64 {
            idx.insert(&Value::Int((r % 3) as i64), r).unwrap();
        }
        let mut rows = idx.lookup(&Value::Int(1)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![1, 4, 7]);
    }

    #[test]
    fn survives_crash_and_reattaches() {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        let desc = idx.desc_offset();
        for k in 0..200i64 {
            idx.insert(&Value::Int(k * 3 % 101), k as u64).unwrap();
        }
        h.region().crash(CrashPolicy::DropUnflushed);
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let idx2 = NvOrderedIndex::open(&h2, desc).unwrap();
        assert_eq!(idx2.len().unwrap(), 200);
        let rows = idx2.lookup_range(None, None).unwrap();
        assert_eq!(rows.len(), 200);
        // Ordered after recovery.
        let region = h2.region();
        let keys: Vec<u64> = {
            let mut out = Vec::new();
            let mut cur: u64 = region.read_pod(desc + D_HEAD).unwrap();
            while cur != 0 {
                out.push(region.read_pod(cur + NODE_KEY).unwrap());
                cur = region.read_pod(cur + NODE_NEXT).unwrap();
            }
            out
        };
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn crash_mid_insert_under_indexed_node_still_found() {
        // Simulate the worst crash: node published at level 0 but upper
        // links lost (never flushed). Searches must still find it.
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        let desc = idx.desc_offset();
        for k in 0..50i64 {
            idx.insert(&Value::Int(k), k as u64).unwrap();
        }
        // Manually clobber all upper-level head pointers (volatile + then
        // persist, modelling lost acceleration links).
        let region = h.region();
        for l in 1..MAX_HEIGHT {
            region.write_pod(desc + D_HEAD + l * 8, &0u64).unwrap();
            region.persist(desc + D_HEAD + l * 8, 8).unwrap();
        }
        h.region().crash(CrashPolicy::DropUnflushed);
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let idx2 = NvOrderedIndex::open(&h2, desc).unwrap();
        for k in 0..50i64 {
            assert_eq!(idx2.lookup(&Value::Int(k)).unwrap(), vec![k as u64]);
        }
    }

    #[test]
    fn pooled_nodes_keep_block_count_low() {
        let h = heap();
        let idx = NvOrderedIndex::create(&h, 0, DataType::Int).unwrap();
        for k in 0..2000i64 {
            idx.insert(&Value::Int(k), k as u64).unwrap();
        }
        let blocks = h.walk().unwrap().len();
        assert!(blocks < 24, "heap has {blocks} blocks for 2000 nodes");
    }

    #[test]
    fn destroy_releases_blocks() {
        let h = heap();
        let live = |h: &NvmHeap| {
            h.walk()
                .unwrap()
                .iter()
                .filter(|b| b.state == nvm::AllocState::Allocated)
                .count()
        };
        let before = live(&h);
        let idx = NvOrderedIndex::create(&h, 1, DataType::Text).unwrap();
        for k in 0..800u64 {
            idx.insert(&Value::Text(format!("key-{k:04}")), k).unwrap();
        }
        idx.destroy().unwrap();
        assert_eq!(live(&h), before);
    }

    #[test]
    fn build_from_table() {
        use storage::{ColumnDef, Schema, TableStore, VTable};
        let h = heap();
        let mut t = VTable::new(Schema::new(vec![ColumnDef::new("k", DataType::Int)]));
        for i in 0..40i64 {
            t.insert_version(&[Value::Int(40 - i)], 1).unwrap();
        }
        let idx = NvOrderedIndex::build_from(&h, &t, 0).unwrap();
        let rows = idx
            .lookup_range(Some(&Value::Int(10)), Some(&Value::Int(15)))
            .unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn node_checksum_detects_scribbled_row() {
        use storage::{ColumnDef, Schema, TableStore, VTable};
        let h = heap();
        let mut t = VTable::new(Schema::new(vec![ColumnDef::new("k", DataType::Int)]));
        for i in 0..20i64 {
            t.insert_version(&[Value::Int(i)], 1).unwrap();
        }
        let idx = NvOrderedIndex::build_from(&h, &t, 0).unwrap();
        let clean = idx.verify_against(&t).unwrap();
        assert_eq!(clean.dangling + clean.stale_keys + clean.missing_rows, 0);
        // Corrupt the first level-0 node's row word without resealing.
        let region = h.region();
        let node: u64 = region.read_pod(idx.desc + D_HEAD).unwrap();
        assert_ne!(node, 0);
        let row: u64 = region.read_pod(node + NODE_ROW).unwrap();
        region.write_pod(node + NODE_ROW, &(row ^ 1)).unwrap();
        region.persist(node + NODE_ROW, 8).unwrap();
        match idx.verify_against(&t) {
            Err(StorageError::Nvm(nvm::NvmError::ChecksumMismatch { what, offset, .. })) => {
                assert_eq!(what, "ordered index node");
                assert_eq!(offset, node);
            }
            other => panic!("expected node checksum mismatch, got {other:?}"),
        }
    }
}
