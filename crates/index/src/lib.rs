#![warn(missing_docs)]

//! Index structures for the two engine variants.
//!
//! * [`VolatileHashIndex`] / [`VolatileOrderedIndex`] — DRAM group-key
//!   indexes used by the log-based baseline. They are *not* durable: after a
//!   restart the baseline must rebuild them by scanning the recovered table,
//!   which is part of its size-dependent recovery cost (experiment E6).
//! * [`NvHashIndex`] — the Hyrise-NV multi-version hash index. Buckets and
//!   entry chains live on NVM and are updated with the allocator's
//!   crash-safe activate protocol, so after a restart the index is simply
//!   *mapped*, never rebuilt. Entries are versioned implicitly: the index
//!   stores one entry per physical row version; readers filter through the
//!   table's MVCC metadata and verify the key against the base table (the
//!   index stores 64-bit key hashes, not keys).
//!
//! Indexes return *candidate* physical rows; callers apply MVCC visibility
//! and (for the hash indexes) equality verification.

mod hash;
mod nvhash;
mod nvordered;
mod ordered;

pub use hash::VolatileHashIndex;
pub use nvhash::{NvHashIndex, NVHASH_DESC_SIZE};
pub use nvordered::{NvOrderedIndex, MAX_HEIGHT, NVORDERED_DESC_SIZE, ORD_POOL_ENTRIES};
pub use ordered::VolatileOrderedIndex;

use std::hash::{Hash, Hasher};

use storage::Value;

/// Result of checking a persistent index against its base table (the
/// index↔table agreement invariant of the crash-torture harness). A clean
/// index has zeroes in every counter except `entries`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCheck {
    /// Entries walked in the index.
    pub entries: u64,
    /// Entries pointing at row ids beyond the table's row count.
    pub dangling: u64,
    /// Entries whose stored key (hash) disagrees with the row's current
    /// column value.
    pub stale_keys: u64,
    /// Physical table rows the index cannot find by their key.
    pub missing_rows: u64,
}

impl IndexCheck {
    /// True when the index and table agree.
    pub fn is_clean(&self) -> bool {
        self.dangling == 0 && self.stale_keys == 0 && self.missing_rows == 0
    }

    /// Fold another index's check into this one.
    pub fn absorb(&mut self, other: &IndexCheck) {
        self.entries += other.entries;
        self.dangling += other.dangling;
        self.stale_keys += other.stale_keys;
        self.missing_rows += other.missing_rows;
    }
}

/// The 64-bit key hash shared by the volatile and persistent hash indexes
/// (stable across runs of the same build; FNV-1a over the value's tagged
/// bytes).
pub fn key_hash(v: &Value) -> u64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01B3);
            }
        }
    }
    let mut h = Fnv(0xCBF2_9CE4_8422_2325);
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_check_absorb_and_clean() {
        let mut a = IndexCheck {
            entries: 3,
            ..Default::default()
        };
        assert!(a.is_clean());
        a.absorb(&IndexCheck {
            entries: 2,
            dangling: 1,
            stale_keys: 0,
            missing_rows: 0,
        });
        assert_eq!(a.entries, 5);
        assert!(!a.is_clean());
    }

    #[test]
    fn key_hash_stable_and_discriminating() {
        assert_eq!(key_hash(&Value::Int(5)), key_hash(&Value::Int(5)));
        assert_ne!(key_hash(&Value::Int(5)), key_hash(&Value::Int(6)));
        assert_ne!(key_hash(&Value::Int(5)), key_hash(&Value::Double(5.0)));
        assert_eq!(
            key_hash(&Value::Text("ab".into())),
            key_hash(&Value::Text("ab".into()))
        );
    }
}
