//! DRAM hash group-key index (baseline).

use std::collections::HashMap;

use storage::{RowId, TableStore, Value};

/// A group-key index mapping column values to the physical rows containing
/// them. Volatile: the baseline rebuilds it after restart with
/// [`VolatileHashIndex::rebuild`].
#[derive(Debug, Default, Clone)]
pub struct VolatileHashIndex {
    map: HashMap<Value, Vec<RowId>>,
    column: usize,
}

impl VolatileHashIndex {
    /// An empty index over column `column`.
    pub fn new(column: usize) -> VolatileHashIndex {
        VolatileHashIndex {
            map: HashMap::new(),
            column,
        }
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Register a new row version carrying `value`.
    pub fn insert(&mut self, value: &Value, row: RowId) {
        self.map.entry(value.clone()).or_default().push(row);
    }

    /// Candidate physical rows for `value` (all versions; caller filters
    /// visibility).
    pub fn lookup(&self, value: &Value) -> &[RowId] {
        self.map.get(value).map_or(&[], |v| v.as_slice())
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total row entries.
    pub fn entry_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Rebuild from a table scan — the baseline's post-restart (and
    /// post-merge) path. Indexes every physical row, including dead
    /// versions; visibility is the reader's job.
    pub fn rebuild(&mut self, table: &dyn TableStore) -> storage::Result<()> {
        self.map.clear();
        for row in 0..table.row_count() {
            let v = table.value(row, self.column)?;
            self.insert(&v, row);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{ColumnDef, DataType, Schema, VTable};

    fn table_with(rows: &[i64]) -> VTable {
        let mut t = VTable::new(Schema::new(vec![ColumnDef::new("k", DataType::Int)]));
        for &k in rows {
            t.insert_version(&[Value::Int(k)], 1).unwrap();
        }
        t
    }

    #[test]
    fn insert_and_lookup() {
        let mut idx = VolatileHashIndex::new(0);
        idx.insert(&Value::Int(1), 0);
        idx.insert(&Value::Int(1), 2);
        idx.insert(&Value::Int(2), 1);
        assert_eq!(idx.lookup(&Value::Int(1)), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int(9)), &[] as &[RowId]);
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.entry_count(), 3);
    }

    #[test]
    fn rebuild_matches_table() {
        let t = table_with(&[5, 3, 5, 8]);
        let mut idx = VolatileHashIndex::new(0);
        idx.rebuild(&t).unwrap();
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int(8)), &[3]);
    }
}
