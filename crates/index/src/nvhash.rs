//! Persistent multi-version hash index on NVM.
//!
//! Layout:
//!
//! ```text
//! Desc block (40 B): nbuckets | buckets_ptr | column | pool_head | pool_used
//! Buckets: array of u64 — head entry offset per bucket (0 = empty)
//! Pool block: next_pool u64, then POOL_ENTRIES × entry
//! Entry (32 B): next u64 | key_hash u64 | row u64 | checksum u64
//! ```
//!
//! Entries are sub-allocated from **pool blocks** of [`POOL_ENTRIES`]
//! entries each, so the heap's block count — and therefore the allocator's
//! restart recovery scan — grows with `rows / 1024`, not `rows` (small-
//! object pooling, as nvm_malloc-backed engines do).
//!
//! Insertion publish protocol: write the entry (its `next` already pointing
//! at the old chain head) and flush it, fence, then durably store the
//! bucket slot — an 8-byte line-atomic publish. A crash before the publish
//! wastes at most one pooled entry slot (bytes, not blocks); the index is
//! never rebuilt on restart. This is the paper's "multi-version data
//! structure" pattern: one entry per physical row *version*, stale versions
//! filtered by MVCC visibility at read time and dropped wholesale when a
//! merge rebuilds the index.

use nvm::NvmHeap;
use storage::{Result, RowId, StorageError, Value};

use crate::key_hash;

/// Byte size of the persistent descriptor block.
pub const NVHASH_DESC_SIZE: u64 = 40;

/// Entries per pool block.
pub const POOL_ENTRIES: u64 = 1024;

const D_NBUCKETS: u64 = 0;
const D_BUCKETS: u64 = 8;
const D_COLUMN: u64 = 16;
const D_POOL_HEAD: u64 = 24;
const D_POOL_USED: u64 = 32;

const E_NEXT: u64 = 0;
const E_HASH: u64 = 8;
const E_ROW: u64 = 16;
/// FNV-1a checksum over the three preceding words. Every word of an entry —
/// including `next`, since chains only ever grow at the bucket head — is
/// write-once before the bucket publish, so the seal never goes stale.
const E_SUM: u64 = 24;
const ENTRY_SIZE: u64 = 32;

fn entry_sum(next: u64, hash: u64, row: u64) -> u64 {
    util::hash::fnv1a_words(&[next, hash, row])
}
/// Pool block: one next-pointer word, then the entries.
const POOL_HDR: u64 = 8;
const POOL_BYTES: u64 = POOL_HDR + POOL_ENTRIES * ENTRY_SIZE;

/// Handle to a persistent hash index. Plain data; re-attach after restart
/// with [`NvHashIndex::open`] — O(1), no scan.
#[derive(Debug, Clone)]
pub struct NvHashIndex {
    heap: NvmHeap,
    desc: u64,
    nbuckets: u64,
    buckets: u64,
    column: usize,
}

impl NvHashIndex {
    /// Create a fresh index with `nbuckets` buckets over `column`.
    pub fn create(heap: &NvmHeap, column: usize, nbuckets: u64) -> Result<NvHashIndex> {
        let nbuckets = nbuckets.next_power_of_two().max(16);
        let region = heap.region();
        let buckets = heap.alloc(nbuckets * 8)?;
        for i in 0..nbuckets {
            region.write_pod(buckets + i * 8, &0u64)?;
        }
        region.persist(buckets, nbuckets * 8)?;
        let desc = heap.alloc(NVHASH_DESC_SIZE)?;
        region.write_pod(desc + D_NBUCKETS, &nbuckets)?;
        region.write_pod(desc + D_BUCKETS, &buckets)?;
        region.write_pod(desc + D_COLUMN, &(column as u64))?;
        region.write_pod(desc + D_POOL_HEAD, &0u64)?;
        region.write_pod(desc + D_POOL_USED, &POOL_ENTRIES)?; // forces a pool on first insert
        region.persist(desc, NVHASH_DESC_SIZE)?;
        Ok(NvHashIndex {
            heap: heap.clone(),
            desc,
            nbuckets,
            buckets,
            column,
        })
    }

    /// Re-attach to an existing index by descriptor offset.
    pub fn open(heap: &NvmHeap, desc: u64) -> Result<NvHashIndex> {
        let region = heap.region();
        let nbuckets: u64 = region.read_pod(desc + D_NBUCKETS)?;
        let buckets: u64 = region.read_pod(desc + D_BUCKETS)?;
        let column: u64 = region.read_pod(desc + D_COLUMN)?;
        if !nbuckets.is_power_of_two() || nbuckets == 0 || nbuckets > 1 << 32 {
            return Err(StorageError::Corrupt {
                reason: "implausible bucket count in index descriptor",
            });
        }
        Ok(NvHashIndex {
            heap: heap.clone(),
            desc,
            nbuckets,
            buckets,
            column: column as usize,
        })
    }

    /// Descriptor offset (for cataloguing).
    pub fn desc_offset(&self) -> u64 {
        self.desc
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    fn bucket_slot(&self, hash: u64) -> u64 {
        self.buckets + (hash & (self.nbuckets - 1)) * 8
    }

    /// Sub-allocate one entry slot from the pool (growing it if needed).
    fn alloc_entry(&self) -> Result<u64> {
        let region = self.heap.region();
        let used: u64 = region.read_pod(self.desc + D_POOL_USED)?;
        let head: u64 = region.read_pod(self.desc + D_POOL_HEAD)?;
        let (pool, slot) = if used >= POOL_ENTRIES || head == 0 {
            // New pool block, linked at the head of the pool chain.
            let pool = self.heap.reserve(POOL_BYTES)?;
            region.write_pod(pool, &head)?;
            region.persist(pool, 8)?;
            self.heap
                .activate(pool, Some((self.desc + D_POOL_HEAD, pool)), None)?;
            (pool, 0u64)
        } else {
            (head, used)
        };
        // Claim the slot durably; a crash after this wastes the slot only.
        region.write_pod(self.desc + D_POOL_USED, &(slot + 1))?;
        region.persist(self.desc + D_POOL_USED, 8)?;
        Ok(pool + POOL_HDR + slot * ENTRY_SIZE)
    }

    /// Register a new row version carrying `value`. Crash-atomic.
    pub fn insert(&self, value: &Value, row: RowId) -> Result<()> {
        let region = self.heap.region();
        let hash = key_hash(value);
        let slot = self.bucket_slot(hash);
        let old_head: u64 = region.read_pod(slot)?;
        let entry = self.alloc_entry()?;
        region.write_pod(entry + E_NEXT, &old_head)?;
        region.write_pod(entry + E_HASH, &hash)?;
        region.write_pod(entry + E_ROW, &row)?;
        region.write_pod(entry + E_SUM, &entry_sum(old_head, hash, row))?;
        region.persist(entry, ENTRY_SIZE)?;
        // Publish: line-atomic 8-byte store of the bucket head.
        region.write_pod(slot, &entry)?;
        region.persist(slot, 8)?;
        Ok(())
    }

    /// Candidate physical rows whose key hash matches `value`'s. The caller
    /// must verify equality against the base table (hash collisions) and
    /// apply MVCC visibility.
    pub fn lookup(&self, value: &Value) -> Result<Vec<RowId>> {
        let region = self.heap.region();
        let hash = key_hash(value);
        let mut cur: u64 = region.read_pod(self.bucket_slot(hash))?;
        let mut out = Vec::new();
        let mut hops = 0u64;
        while cur != 0 {
            if hops > 1 << 32 {
                return Err(StorageError::Corrupt {
                    reason: "index chain cycle",
                });
            }
            hops += 1;
            let h: u64 = region.read_pod(cur + E_HASH)?;
            if h == hash {
                out.push(region.read_pod(cur + E_ROW)?);
            }
            cur = region.read_pod(cur + E_NEXT)?;
        }
        // Entries were pushed at the head; restore insertion order.
        out.reverse();
        Ok(out)
    }

    /// Total entries across all buckets (diagnostics; O(entries)).
    pub fn entry_count(&self) -> Result<u64> {
        let region = self.heap.region();
        let mut n = 0u64;
        for b in 0..self.nbuckets {
            let mut cur: u64 = region.read_pod(self.buckets + b * 8)?;
            while cur != 0 {
                n += 1;
                cur = region.read_pod(cur + E_NEXT)?;
            }
        }
        Ok(n)
    }

    /// Number of pool blocks backing the entries (diagnostics; shows the
    /// metadata-bound block count).
    pub fn pool_blocks(&self) -> Result<u64> {
        let region = self.heap.region();
        let mut n = 0u64;
        let mut pool: u64 = region.read_pod(self.desc + D_POOL_HEAD)?;
        while pool != 0 {
            n += 1;
            pool = region.read_pod(pool)?;
        }
        Ok(n)
    }

    /// Free the pool chain and the bucket/descriptor blocks. Used when a
    /// merge replaces the index with a freshly built one.
    pub fn destroy(self) -> Result<()> {
        let region = self.heap.region().clone();
        let mut pool: u64 = region.read_pod(self.desc + D_POOL_HEAD)?;
        while pool != 0 {
            let next: u64 = region.read_pod(pool)?;
            self.heap.free(pool, None)?;
            pool = next;
        }
        self.heap.free(self.buckets, None)?;
        self.heap.free(self.desc, None)?;
        Ok(())
    }

    /// The labelled persistent extents of this index — one checksummed run
    /// per chain entry, for media-fault harnesses that target real bytes
    /// (the file-backed backend corrupts these offsets in the closed image
    /// file to force a rung-1 rebuild).
    pub fn media_extents(&self) -> Result<Vec<storage::nv::MediaExtent>> {
        let region = self.heap.region();
        let mut out = Vec::new();
        for b in 0..self.nbuckets {
            let mut cur: u64 = region.read_pod(self.buckets + b * 8)?;
            let mut hops = 0u64;
            while cur != 0 {
                if hops > 1 << 32 {
                    return Err(StorageError::Corrupt {
                        reason: "hash index chain cycle",
                    });
                }
                hops += 1;
                out.push(storage::nv::MediaExtent {
                    what: "hash-index-entry",
                    offset: cur,
                    len: ENTRY_SIZE,
                    checksummed: true,
                });
                cur = region.read_pod(cur + E_NEXT)?;
            }
        }
        Ok(out)
    }

    /// Check index↔table agreement: every entry must point at an in-bounds
    /// row whose current key hashes to the entry's stored hash, and every
    /// physical table row must be reachable through a lookup of its key.
    /// Used by the crash-torture harness after each recovery.
    pub fn verify_against(&self, table: &dyn storage::TableStore) -> Result<crate::IndexCheck> {
        let region = self.heap.region();
        let nrows = table.row_count();
        let mut check = crate::IndexCheck::default();
        for b in 0..self.nbuckets {
            let mut cur: u64 = region.read_pod(self.buckets + b * 8)?;
            let mut hops = 0u64;
            while cur != 0 {
                if hops > 1 << 32 {
                    return Err(StorageError::Corrupt {
                        reason: "index chain cycle",
                    });
                }
                hops += 1;
                check.entries += 1;
                let h: u64 = region.read_pod(cur + E_HASH)?;
                let row: u64 = region.read_pod(cur + E_ROW)?;
                let next: u64 = region.read_pod(cur + E_NEXT)?;
                let stored: u64 = region.read_pod(cur + E_SUM)?;
                let computed = entry_sum(next, h, row);
                if stored != computed {
                    return Err(StorageError::Nvm(nvm::NvmError::ChecksumMismatch {
                        what: "hash index entry",
                        offset: cur,
                        stored,
                        computed,
                    }));
                }
                if row >= nrows {
                    check.dangling += 1;
                } else if key_hash(&table.value(row, self.column)?) != h {
                    check.stale_keys += 1;
                }
                cur = region.read_pod(cur + E_NEXT)?;
            }
        }
        for row in 0..nrows {
            // Aborted inserts stay physically present but invisible; the
            // crash recovery that aborted them may legitimately predate the
            // index-entry publish, so they are exempt from the agreement
            // check.
            if table.begin_ts(row)? == storage::mvcc::TS_ABORTED {
                continue;
            }
            let v = table.value(row, self.column)?;
            if !self.lookup(&v)?.contains(&row) {
                check.missing_rows += 1;
            }
        }
        Ok(check)
    }

    /// Bulk-build a fresh index over every physical row of `table`'s
    /// indexed column (used at merge time; the result replaces the old
    /// index).
    pub fn build_from(
        heap: &NvmHeap,
        table: &dyn storage::TableStore,
        column: usize,
        nbuckets: u64,
    ) -> Result<NvHashIndex> {
        let nrows = table.row_count();
        Self::build_with(heap, column, nbuckets, nrows, |row| {
            table.value(row, column)
        })
    }

    /// Bulk-build over in-memory rows whose index id is their position —
    /// the shape of a planned merge's survivor list, letting the
    /// replacement index be built *before* the merge publishes.
    pub fn build_from_rows(
        heap: &NvmHeap,
        column: usize,
        nbuckets: u64,
        rows: &[Vec<Value>],
    ) -> Result<NvHashIndex> {
        Self::build_with(heap, column, nbuckets, rows.len() as u64, |row| {
            rows[row as usize]
                .get(column)
                .cloned()
                .ok_or(StorageError::Corrupt {
                    reason: "planned row narrower than the indexed column",
                })
        })
    }

    /// Shared bulk-build loop. On any failure the partially built index is
    /// destroyed before the error propagates — a capacity-failed build
    /// must not leak its allocations.
    fn build_with(
        heap: &NvmHeap,
        column: usize,
        nbuckets: u64,
        nrows: u64,
        mut value_of: impl FnMut(u64) -> storage::Result<Value>,
    ) -> Result<NvHashIndex> {
        let idx = NvHashIndex::create(heap, column, nbuckets)?;
        let filled: Result<()> = (|| {
            for row in 0..nrows {
                let v = value_of(row)?;
                idx.insert(&v, row)?;
            }
            Ok(())
        })();
        if let Err(e) = filled {
            let _ = idx.destroy();
            return Err(e);
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::{CrashPolicy, LatencyModel, NvmRegion};
    use std::sync::Arc;

    fn heap() -> NvmHeap {
        NvmHeap::format(Arc::new(NvmRegion::new(1 << 24, LatencyModel::zero()))).unwrap()
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let h = heap();
        let idx = NvHashIndex::create(&h, 0, 64).unwrap();
        for i in 0..100u64 {
            idx.insert(&Value::Int((i % 10) as i64), i).unwrap();
        }
        for k in 0..10i64 {
            let rows = idx.lookup(&Value::Int(k)).unwrap();
            assert_eq!(rows.len(), 10, "key {k}");
            assert!(rows.iter().all(|r| (r % 10) as i64 == k));
        }
        assert!(idx.lookup(&Value::Int(99)).unwrap().is_empty());
        assert_eq!(idx.entry_count().unwrap(), 100);
    }

    #[test]
    fn survives_crash_without_rebuild() {
        let h = heap();
        let idx = NvHashIndex::create(&h, 2, 32).unwrap();
        let desc = idx.desc_offset();
        for i in 0..50u64 {
            idx.insert(&Value::Text(format!("k{}", i % 5)), i).unwrap();
        }
        h.region().crash(CrashPolicy::DropUnflushed);
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let idx2 = NvHashIndex::open(&h2, desc).unwrap();
        assert_eq!(idx2.column(), 2);
        let rows = idx2.lookup(&Value::Text("k3".into())).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(idx2.entry_count().unwrap(), 50);
    }

    #[test]
    fn crash_mid_insert_leaves_consistent_chain() {
        // An entry slot claimed but never published must disappear from
        // view; the chain stays intact.
        let h = heap();
        let idx = NvHashIndex::create(&h, 0, 16).unwrap();
        let desc = idx.desc_offset();
        idx.insert(&Value::Int(1), 10).unwrap();
        // Claim a slot and write the entry, but never publish the bucket.
        let e = idx.alloc_entry().unwrap();
        h.region()
            .write_pod(e + E_HASH, &key_hash(&Value::Int(1)))
            .unwrap();
        h.region().persist(e, ENTRY_SIZE).unwrap();
        h.region().crash(CrashPolicy::DropUnflushed);
        let (h2, _) = NvmHeap::open(h.region().clone()).unwrap();
        let idx2 = NvHashIndex::open(&h2, desc).unwrap();
        assert_eq!(idx2.lookup(&Value::Int(1)).unwrap(), vec![10]);
        assert_eq!(idx2.entry_count().unwrap(), 1);
    }

    #[test]
    fn insertion_order_preserved_per_key() {
        let h = heap();
        let idx = NvHashIndex::create(&h, 0, 16).unwrap();
        for r in [5u64, 2, 9] {
            idx.insert(&Value::Int(7), r).unwrap();
        }
        assert_eq!(idx.lookup(&Value::Int(7)).unwrap(), vec![5, 2, 9]);
    }

    #[test]
    fn entries_are_pooled() {
        let h = heap();
        let idx = NvHashIndex::create(&h, 0, 64).unwrap();
        for i in 0..(POOL_ENTRIES * 3 + 10) {
            idx.insert(&Value::Int(i as i64), i).unwrap();
        }
        assert_eq!(idx.pool_blocks().unwrap(), 4, "3 full pools + 1 partial");
        // Block count in the heap stays tiny relative to entries.
        let blocks = h.walk().unwrap().len() as u64;
        assert!(blocks < 32, "heap has {blocks} blocks for 3082 entries");
    }

    #[test]
    fn destroy_releases_blocks() {
        let h = heap();
        let live = |h: &NvmHeap| {
            h.walk()
                .unwrap()
                .iter()
                .filter(|b| b.state == nvm::AllocState::Allocated)
                .count()
        };
        let before = live(&h);
        let idx = NvHashIndex::create(&h, 0, 16).unwrap();
        for i in 0..2000u64 {
            idx.insert(&Value::Int(i as i64), i).unwrap();
        }
        assert!(live(&h) > before);
        idx.destroy().unwrap();
        assert_eq!(live(&h), before);
    }

    #[test]
    fn build_from_table() {
        use storage::{ColumnDef, DataType, Schema, TableStore, VTable};
        let h = heap();
        let mut t = VTable::new(Schema::new(vec![ColumnDef::new("k", DataType::Int)]));
        for i in 0..30i64 {
            t.insert_version(&[Value::Int(i % 6)], 1).unwrap();
        }
        let idx = NvHashIndex::build_from(&h, &t, 0, 64).unwrap();
        assert_eq!(idx.lookup(&Value::Int(3)).unwrap().len(), 5);
    }

    #[test]
    fn entry_checksum_detects_scribbled_row() {
        use storage::{ColumnDef, DataType, Schema, TableStore, VTable};
        let h = heap();
        let mut t = VTable::new(Schema::new(vec![ColumnDef::new("k", DataType::Int)]));
        for i in 0..20i64 {
            t.insert_version(&[Value::Int(i)], 1).unwrap();
        }
        let idx = NvHashIndex::build_from(&h, &t, 0, 64).unwrap();
        let clean = idx.verify_against(&t).unwrap();
        assert_eq!(clean.dangling + clean.stale_keys + clean.missing_rows, 0);
        // Corrupt a published entry's row word without resealing.
        let region = h.region();
        let entry = (0..idx.nbuckets)
            .find_map(|b| {
                let head: u64 = region.read_pod(idx.buckets + b * 8).unwrap();
                (head != 0).then_some(head)
            })
            .expect("nonempty bucket");
        let row: u64 = region.read_pod(entry + E_ROW).unwrap();
        region.write_pod(entry + E_ROW, &(row ^ 1)).unwrap();
        region.persist(entry + E_ROW, 8).unwrap();
        match idx.verify_against(&t) {
            Err(StorageError::Nvm(nvm::NvmError::ChecksumMismatch { what, offset, .. })) => {
                assert_eq!(what, "hash index entry");
                assert_eq!(offset, entry);
            }
            other => panic!("expected entry checksum mismatch, got {other:?}"),
        }
    }
}
