//! DRAM ordered group-key index (baseline), supporting range probes.

use std::collections::BTreeMap;
use std::ops::Bound;

use storage::{RowId, TableStore, Value};

/// An ordered group-key index over one column, for range lookups. Volatile;
/// rebuilt after restart (and after merges).
#[derive(Debug, Default, Clone)]
pub struct VolatileOrderedIndex {
    map: BTreeMap<Value, Vec<RowId>>,
    column: usize,
}

impl VolatileOrderedIndex {
    /// An empty index over column `column`.
    pub fn new(column: usize) -> VolatileOrderedIndex {
        VolatileOrderedIndex {
            map: BTreeMap::new(),
            column,
        }
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Register a new row version carrying `value`.
    pub fn insert(&mut self, value: &Value, row: RowId) {
        self.map.entry(value.clone()).or_default().push(row);
    }

    /// Candidate rows with value exactly `value`.
    pub fn lookup(&self, value: &Value) -> &[RowId] {
        self.map.get(value).map_or(&[], |v| v.as_slice())
    }

    /// Candidate rows with `lo <= value < hi` (either bound optional).
    pub fn lookup_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        let lo_bound = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let hi_bound = hi.map_or(Bound::Unbounded, |v| Bound::Excluded(v.clone()));
        let mut out = Vec::new();
        for rows in self.map.range((lo_bound, hi_bound)).map(|(_, r)| r) {
            out.extend_from_slice(rows);
        }
        out
    }

    /// Smallest indexed key at or above `v`, with its rows.
    pub fn ceiling(&self, v: &Value) -> Option<(&Value, &[RowId])> {
        self.map
            .range((Bound::Included(v.clone()), Bound::Unbounded))
            .next()
            .map(|(k, r)| (k, r.as_slice()))
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Rebuild from a table scan (post-restart / post-merge).
    pub fn rebuild(&mut self, table: &dyn TableStore) -> storage::Result<()> {
        self.map.clear();
        for row in 0..table.row_count() {
            let v = table.value(row, self.column)?;
            self.insert(&v, row);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> VolatileOrderedIndex {
        let mut i = VolatileOrderedIndex::new(0);
        for (k, r) in [(5i64, 0u64), (1, 1), (9, 2), (5, 3), (7, 4)] {
            i.insert(&Value::Int(k), r);
        }
        i
    }

    #[test]
    fn range_lookups() {
        let i = idx();
        let mut got = i.lookup_range(Some(&Value::Int(5)), Some(&Value::Int(9)));
        got.sort();
        assert_eq!(got, vec![0, 3, 4]);
        assert_eq!(i.lookup_range(None, Some(&Value::Int(2))), vec![1]);
        let all = i.lookup_range(None, None);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn ceiling_finds_next_key() {
        let i = idx();
        let (k, rows) = i.ceiling(&Value::Int(6)).unwrap();
        assert_eq!(*k, Value::Int(7));
        assert_eq!(rows, &[4]);
        assert!(i.ceiling(&Value::Int(10)).is_none());
    }

    #[test]
    fn exact_lookup() {
        let i = idx();
        assert_eq!(i.lookup(&Value::Int(5)), &[0, 3]);
        assert_eq!(i.key_count(), 4);
    }
}
