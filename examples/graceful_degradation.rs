//! Walk the watermark-driven degradation ladder live: fill a small NVM
//! device toward the brim and watch the engine move Normal → Backpressure
//! → ReadOnly, keep serving reads the whole way, then reclaim its way back
//! to writability — no panic anywhere on the path.
//!
//! Run: `cargo run --release -p hyrise-nv --example graceful_degradation`

use hyrise_nv::{retry_write, Database, DurabilityConfig, EngineError, HealthState};
use nvm::{AllocFaultClass, AllocFaultSpec, LatencyModel};
use storage::{ColumnDef, DataType, Schema, Value};

fn banner(db: &mut Database, label: &str) {
    let h = db.health();
    println!(
        "[{label}] state={:?} utilization={:.1}% rejected={} capacity_aborts={} reclaims={}",
        h.state,
        h.utilization * 100.0,
        h.writes_rejected,
        h.capacity_aborts,
        h.reclaims
    );
}

fn main() -> hyrise_nv::Result<()> {
    let mut db = Database::create(DurabilityConfig::nvm_with_wal(
        16 << 20,
        LatencyModel::zero(),
    ))?;
    let t = db.create_table(
        "orders",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("qty", DataType::Int),
        ]),
    )?;

    // Seed some committed state, then clamp the effective capacity so the
    // current footprint sits at ~60% — modelling a small NVM device.
    let mut next_id = 0i64;
    for _ in 0..40 {
        let mut tx = db.begin();
        for _ in 0..8 {
            db.insert(&mut tx, t, &[Value::Int(next_id), Value::Int(1)])?;
            next_id += 1;
        }
        db.commit(&mut tx)?;
    }
    let s = db.heap_stats().unwrap();
    db.set_capacity_clamp(Some((s.high_water - s.free_bytes) * 10 / 6))?;
    banner(&mut db, "seeded");

    // Fill toward the brim. Admission control turns writers away with a
    // typed, retryable error before the allocator ever runs dry.
    let rejection = loop {
        let mut tx = db.begin();
        let mut failed = None;
        for _ in 0..8 {
            match db.insert(&mut tx, t, &[Value::Int(next_id), Value::Int(1)]) {
                Ok(_) => next_id += 1,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        match failed {
            Some(e) => {
                db.abort(&mut tx)?;
                break e;
            }
            None => {
                db.commit(&mut tx)?;
            }
        }
    };
    println!("write rejected: {rejection}");

    // Shrink the device so the surviving footprint reads over the
    // backpressure watermark: admission control now turns writers away
    // with a typed, retryable error before the allocator ever runs dry.
    let s = db.heap_stats().unwrap();
    let live = s.high_water - s.free_bytes;
    db.set_capacity_clamp(Some(live * 100 / 88))?;
    banner(&mut db, "backpressure");
    assert_eq!(db.health().state, HealthState::Backpressure);
    let mut tx = db.begin();
    match db.insert(&mut tx, t, &[Value::Int(-2), Value::Int(0)]) {
        Err(e @ EngineError::Backpressure { .. }) => {
            assert!(e.is_retryable());
            println!("write refused (retryable): {e}");
        }
        other => panic!("expected a typed Backpressure rejection, got {other:?}"),
    }
    db.abort(&mut tx)?;

    // Tighten the clamp past the read-only watermark: the engine stops
    // admitting writes and DDL entirely — but reads still flow.
    db.set_capacity_clamp(Some(live + live / 50))?;
    banner(&mut db, "read-only");
    let tx = db.begin();
    let visible = db.scan_all(&tx, t)?.len();
    println!("reads still served in ReadOnly: {visible} rows visible");
    let mut tx = db.begin();
    match db.insert(&mut tx, t, &[Value::Int(-1), Value::Int(0)]) {
        Err(e @ EngineError::ReadOnly { .. }) => println!("write refused: {e}"),
        other => panic!("expected a typed ReadOnly rejection, got {other:?}"),
    }
    db.abort(&mut tx)?;

    // Recovery: back on the full device, delete a swathe of rows in small
    // transactions (their versions stay on-heap until a merge retires
    // them), shrink again, and reclaim: the emergency merge compacts the
    // table and utilization drops back under the resume mark.
    db.set_capacity_clamp(None)?;
    let mut doomed = (0..next_id).filter(|id| id % 4 != 0).peekable();
    while doomed.peek().is_some() {
        let mut tx = db.begin();
        for id in doomed.by_ref().take(8) {
            let hits = db.scan_eq(&tx, t, 0, &Value::Int(id))?;
            if let Some(hit) = hits.first() {
                db.delete(&mut tx, t, hit.row)?;
            }
        }
        db.commit(&mut tx)?;
    }
    let s = db.heap_stats().unwrap();
    let live = s.high_water - s.free_bytes;
    db.set_capacity_clamp(Some(live * 100 / 88))?; // pressured again
    banner(&mut db, "pressured");
    let rep = db.reclaim()?;
    println!(
        "reclaim: {} tables merged, utilization {:.1}% -> {:.1}%, state {:?}",
        rep.tables_merged,
        rep.utilization_before * 100.0,
        rep.utilization_after * 100.0,
        rep.state_after
    );
    banner(&mut db, "reclaimed");

    // And the retry helper rides out a transient allocation failure: the
    // first attempt hits an injected out-of-memory, reclamation runs, and
    // the retry lands.
    db.arm_alloc_fault(AllocFaultSpec {
        class: AllocFaultClass::FailNth { nth: 0 },
        seed: 0,
    })?;
    let mut tx = db.begin();
    retry_write(&mut db, |db| {
        db.insert(&mut tx, t, &[Value::Int(next_id), Value::Int(1)])
    })?;
    db.commit(&mut tx)?;
    println!("retry_write rode out an injected allocation failure");
    banner(&mut db, "recovered");
    Ok(())
}
