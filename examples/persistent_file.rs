//! Real durability quickstart: a database whose NVM region is a plain
//! file-backed `mmap`, so the data survives *process exit* — run the
//! example twice and the second run finds the rows the first one wrote.
//!
//! Run: `cargo run --release -p hyrise-nv --example persistent_file`
//!
//! First run:  creates `persistent_file.img` next to the target dir,
//!             inserts a batch of rows, shuts down cleanly.
//! Later runs: reopen the image, print the recovery report (a clean
//!             shutdown skips the undo pass entirely), append another
//!             batch, shut down again.
//!
//! Delete the image (path printed below) to start over.

use std::time::Instant;

use hyrise_nv::{Database, DurabilityConfig, TableId};
use nvm::LatencyModel;
use storage::{ColumnDef, DataType, Schema, Value};

const CAPACITY: u64 = 64 << 20;
const BATCH: i64 = 1_000;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("run", DataType::Int),
        ColumnDef::new("k", DataType::Int),
    ])
}

fn append_batch(db: &mut Database, t: TableId, run: i64) -> hyrise_nv::Result<()> {
    let mut tx = db.begin();
    for k in 0..BATCH {
        db.insert(&mut tx, t, &[Value::Int(run), Value::Int(k)])?;
    }
    db.commit(&mut tx)?;
    Ok(())
}

fn main() -> hyrise_nv::Result<()> {
    let img = std::env::temp_dir().join("persistent_file.img");
    let config = DurabilityConfig::nvm_file(&img, CAPACITY, LatencyModel::zero());
    println!("image: {}", img.display());

    let (mut db, run) = if img.exists() {
        let t0 = Instant::now();
        let (db, report) = Database::open(config)?;
        println!("reopened in {:?}", t0.elapsed());
        print!("{}", report.render());
        println!(
            "clean shutdown marker: {} (undo pass {})",
            report.clean_shutdown,
            if report.clean_shutdown {
                "skipped"
            } else {
                "ran"
            }
        );
        (db, 1 + report.last_cts as i64 % 1_000_000)
    } else {
        println!("no image yet — creating");
        (Database::create(config)?, 0)
    };

    let t = match db.table_id("runs") {
        Some(t) => t,
        None => db.create_table("runs", schema())?,
    };
    append_batch(&mut db, t, run)?;

    let tx = db.begin();
    let rows = db.scan_all(&tx, t)?;
    let runs: std::collections::BTreeSet<i64> =
        rows.iter().map(|r| r.values[0].as_int().unwrap()).collect();
    println!(
        "{} rows visible across {} run(s) of this example",
        rows.len(),
        runs.len()
    );

    // Write the clean-shutdown marker and msync everything; the next run
    // of this example reopens without an undo pass.
    db.shutdown()?;
    println!("shut down cleanly — run the example again to see the instant reopen");
    Ok(())
}
