//! Enterprise order processing (the paper's demo setting): a TPC-C-
//! flavoured workload with NewOrder/Payment transactions, a merge, a crash,
//! and an instant restart — business continues where it left off.
//!
//! Run: `cargo run --release -p hyrise-nv --example order_processing`

use hyrise_nv::{Database, DurabilityConfig, IndexKind, TableId};
use storage::Value;
use workload::{TpccGenerator, TpccTables, TpccTxn};

struct Shop {
    warehouse: TableId,
    district: TableId,
    customer: TableId,
    orders: TableId,
    next_o_key: i64,
}

fn setup(db: &mut Database, generator: &TpccGenerator) -> hyrise_nv::Result<Shop> {
    let schemas = TpccTables::new();
    let warehouse = db.create_table("warehouse", schemas.warehouse)?;
    let district = db.create_table("district", schemas.district)?;
    let customer = db.create_table("customer", schemas.customer)?;
    let orders = db.create_table("orders", schemas.orders)?;
    for (t, c) in [(warehouse, 0), (district, 0), (customer, 0), (orders, 2)] {
        db.create_index(t, c, IndexKind::Hash)?;
    }
    let (ws, ds, cs) = generator.load_rows();
    for (t, rows) in [(warehouse, ws), (district, ds), (customer, cs)] {
        let mut tx = db.begin();
        for row in rows {
            db.insert(&mut tx, t, &row)?;
        }
        db.commit(&mut tx)?;
    }
    Ok(Shop {
        warehouse,
        district,
        customer,
        orders,
        next_o_key: 0,
    })
}

fn execute(db: &mut Database, shop: &mut Shop, txn: &TpccTxn) -> hyrise_nv::Result<bool> {
    let mut tx = db.begin();
    let result = match txn {
        TpccTxn::NewOrder {
            d_key,
            c_key,
            amount,
        } => (|| {
            let d = db.index_lookup(&tx, shop.district, 0, &Value::Int(*d_key))?[0].clone();
            let mut dv = d.values.clone();
            dv[2] = Value::Int(dv[2].as_int().unwrap() + 1);
            db.update(&mut tx, shop.district, d.row, &dv)?;
            let o = shop.next_o_key;
            shop.next_o_key += 1;
            db.insert(
                &mut tx,
                shop.orders,
                &[
                    Value::Int(o),
                    Value::Int(*d_key),
                    Value::Int(*c_key),
                    Value::Double(*amount),
                ],
            )?;
            Ok(())
        })(),
        TpccTxn::Payment {
            w_id,
            d_key,
            c_key,
            amount,
        } => (|| {
            for (t, key, col) in [
                (shop.warehouse, *w_id, 2usize),
                (shop.district, *d_key, 3),
                (shop.customer, *c_key, 3),
            ] {
                let hit = db.index_lookup(&tx, t, 0, &Value::Int(key))?[0].clone();
                let mut v = hit.values.clone();
                let delta = if t == shop.customer { -amount } else { *amount };
                v[col] = Value::Double(v[col].as_double().unwrap() + delta);
                db.update(&mut tx, t, hit.row, &v)?;
            }
            Ok(())
        })(),
        TpccTxn::OrderStatus { c_key } => {
            let _ = db.index_lookup(&tx, shop.customer, 0, &Value::Int(*c_key))?;
            let _ = db.index_lookup(&tx, shop.orders, 2, &Value::Int(*c_key))?;
            Ok(())
        }
    };
    match result {
        Ok(()) => {
            db.commit(&mut tx)?;
            Ok(true)
        }
        Err(e) if hyrise_nv::is_conflict(&e) => {
            db.abort(&mut tx)?;
            Ok(false)
        }
        Err(e) => Err(e),
    }
}

fn total_order_volume(db: &mut Database, shop: &Shop) -> f64 {
    let tx = db.begin();
    db.aggregate(&tx, shop.orders, 3, hyrise_nv::Agg::Sum, None)
        .unwrap()[0]
        .value
        .as_ref()
        .and_then(|v| v.as_double())
        .unwrap_or(0.0)
}

fn main() -> hyrise_nv::Result<()> {
    let mut db = Database::create(DurabilityConfig::nvm(1 << 30, nvm::LatencyModel::pcm()))?;
    let mut generator = TpccGenerator::new(4, 2026);
    let mut shop = setup(&mut db, &generator)?;
    println!("loaded {} customers", 4 * 10 * 30);

    let mut committed = 0u64;
    let mut conflicts = 0u64;
    for txn in generator.txns(5_000) {
        if execute(&mut db, &mut shop, &txn)? {
            committed += 1;
        } else {
            conflicts += 1;
        }
    }
    let volume_before = total_order_volume(&mut db, &shop);
    println!(
        "phase 1: {committed} committed, {conflicts} conflicts, order volume {volume_before:.2}"
    );

    // Consolidate the delta into the read-optimized main partition.
    let stats = db.merge(shop.orders)?;
    println!(
        "merged orders: {} rows into main ({} dead versions dropped)",
        stats.rows_merged, stats.rows_dropped
    );

    // Lights out.
    println!("*** power failure ***");
    let report = db.restart_after_crash()?;
    print!("{}", report.render());
    let volume_after = total_order_volume(&mut db, &shop);
    assert!((volume_after - volume_before).abs() < 1e-6);
    println!("order volume after restart: {volume_after:.2} (unchanged ✓)");

    // Business continues immediately.
    for txn in generator.txns(1_000) {
        execute(&mut db, &mut shop, &txn)?;
    }
    println!(
        "phase 2 done; total orders now {}",
        db.row_count(shop.orders)?
    );
    Ok(())
}
