//! Quickstart: create a database on simulated NVM, run transactions,
//! survive a power failure.
//!
//! Run: `cargo run --release -p hyrise-nv --example quickstart`

use hyrise_nv::{Database, DurabilityConfig, IndexKind};
use storage::{ColumnDef, DataType, Schema, Value};

fn main() -> hyrise_nv::Result<()> {
    // A database whose primary data lives entirely on (simulated) NVM.
    let mut db = Database::create(DurabilityConfig::nvm_default())?;

    let accounts = db.create_table(
        "accounts",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("owner", DataType::Text),
            ColumnDef::new("balance", DataType::Double),
        ]),
    )?;
    db.create_index(accounts, 0, IndexKind::Hash)?;

    // Insert some rows transactionally.
    let mut tx = db.begin();
    for (id, owner, balance) in [(1, "alice", 120.0), (2, "bob", 80.0), (3, "carol", 500.0)] {
        db.insert(
            &mut tx,
            accounts,
            &[Value::Int(id), owner.into(), Value::Double(balance)],
        )?;
    }
    db.commit(&mut tx)?;

    // Transfer money: read, update two rows, commit atomically.
    let mut tx = db.begin();
    let alice = db.index_lookup(&tx, accounts, 0, &Value::Int(1))?[0].clone();
    let bob = db.index_lookup(&tx, accounts, 0, &Value::Int(2))?[0].clone();
    let amount = 50.0;
    let mut av = alice.values.clone();
    av[2] = Value::Double(alice.values[2].as_double().unwrap() - amount);
    let mut bv = bob.values.clone();
    bv[2] = Value::Double(bob.values[2].as_double().unwrap() + amount);
    db.update(&mut tx, accounts, alice.row, &av)?;
    db.update(&mut tx, accounts, bob.row, &bv)?;
    db.commit(&mut tx)?;

    // Power failure! Unflushed cache lines are lost; the engine restarts
    // by re-mapping the NVM region — no log replay, no data reload.
    let report = db.restart_after_crash()?;
    println!("{}", report.render());

    let tx = db.begin();
    println!("accounts after restart:");
    for row in db.scan_all(&tx, accounts)? {
        println!(
            "  id={} owner={} balance={}",
            row.values[0], row.values[1], row.values[2]
        );
    }
    let bob = db.index_lookup(&tx, accounts, 0, &Value::Int(2))?;
    assert_eq!(bob[0].values[2], Value::Double(130.0));
    println!("transfer survived the crash ✓");
    Ok(())
}
