//! The paper's headline demo: identical workloads on the NVM engine and
//! the log-based baseline, then a power failure — compare recovery.
//!
//! Run: `cargo run --release -p hyrise-nv --example instant_restart`

use std::time::Instant;

use hyrise_nv::{Database, DurabilityConfig, TableId};
use storage::{ColumnDef, DataType, Schema, Value};

const ROWS: i64 = 50_000;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("payload", DataType::Text),
    ])
}

fn populate(db: &mut Database) -> hyrise_nv::Result<TableId> {
    let t = db.create_table("events", schema())?;
    let mut tx = db.begin();
    for k in 0..ROWS {
        db.insert(
            &mut tx,
            t,
            &[Value::Int(k), Value::Text(format!("event-payload-{k:08}"))],
        )?;
        if k % 512 == 511 {
            db.commit(&mut tx)?;
            tx = db.begin();
        }
    }
    db.commit(&mut tx)?;
    Ok(t)
}

fn demo(label: &str, config: DurabilityConfig) -> hyrise_nv::Result<()> {
    println!("--- {label} ---");
    let mut db = Database::create(config)?;
    let t0 = Instant::now();
    let t = populate(&mut db)?;
    println!("loaded {ROWS} rows in {:?}", t0.elapsed());
    // Fold the bulk into the read-optimized main partition — the paper's
    // operating point: the write-optimized delta stays small because merges
    // run continuously, and only the delta has size-dependent transient
    // state.
    db.merge(t)?;

    println!("*** power failure ***");
    let report = db.restart_after_crash()?;
    print!("{}", report.render());

    let tx = db.begin();
    let n = db.scan_all(&tx, t)?.len();
    println!("rows visible after restart: {n}\n");
    assert_eq!(n as i64, ROWS);
    Ok(())
}

fn main() -> hyrise_nv::Result<()> {
    demo(
        "Hyrise-NV (all data on simulated NVM)",
        DurabilityConfig::nvm(1 << 30, nvm::LatencyModel::pcm()),
    )?;
    demo(
        "log-based baseline (DRAM + WAL + checkpoint)",
        DurabilityConfig::wal_temp(),
    )?;
    println!(
        "The paper reports 53 s (log-based) vs < 1 s (Hyrise-NV) at 92.2 GB;\n\
         at this scale the same shape appears as milliseconds vs microseconds-\n\
         per-row-independent restart."
    );
    Ok(())
}
