//! Compare the three durability backends on the same workload: write
//! throughput, persistence-primitive counts, and restart cost — the
//! trade-off space the paper positions Hyrise-NV in.
//!
//! Run: `cargo run --release -p hyrise-nv --example durability_tradeoffs`

use std::time::Instant;

use hyrise_nv::{Database, DurabilityConfig};
use storage::{ColumnDef, DataType, Schema, Value};

const ROWS: i64 = 20_000;

fn run(label: &str, config: DurabilityConfig) -> hyrise_nv::Result<()> {
    let mut db = Database::create(config)?;
    let t = db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Text),
        ]),
    )?;

    let t0 = Instant::now();
    let mut tx = db.begin();
    for k in 0..ROWS {
        db.insert(&mut tx, t, &[Value::Int(k), Value::Text(format!("v{k}"))])?;
        if k % 64 == 63 {
            db.commit(&mut tx)?;
            tx = db.begin();
        }
    }
    db.commit(&mut tx)?;
    let wall = t0.elapsed().as_secs_f64();
    let sim = db.simulated_ns() as f64 / 1e9;
    let nvm = db.nvm_stats();
    let wal = db.wal_stats();

    let report = db.restart_after_crash()?;
    let tx = db.begin();
    // The volatile backend loses even the catalogue.
    let survived = db.scan_all(&tx, t).map(|r| r.len()).unwrap_or(0);

    println!("== {label} ==");
    println!(
        "  load: {:.0} inserts/s wall, {:.0} inserts/s modeled (wall+sim)",
        ROWS as f64 / wall,
        ROWS as f64 / (wall + sim)
    );
    if nvm.flush_calls > 0 {
        println!(
            "  NVM primitives: {:.1} flushes/insert, {:.1} fences/insert",
            nvm.flush_calls as f64 / ROWS as f64,
            nvm.fences as f64 / ROWS as f64
        );
    }
    if wal.syncs > 0 {
        println!(
            "  WAL: {} records, {} syncs, {:.1} KiB",
            wal.records,
            wal.syncs,
            wal.bytes as f64 / 1024.0
        );
    }
    println!(
        "  restart: {:?} — {survived}/{ROWS} rows survived\n",
        report.total_wall()
    );
    Ok(())
}

fn main() -> hyrise_nv::Result<()> {
    run(
        "volatile (no durability — upper bound, loses everything)",
        DurabilityConfig::Volatile,
    )?;
    run(
        "log-based baseline (WAL + checkpoint)",
        DurabilityConfig::wal_temp(),
    )?;
    run(
        "Hyrise-NV (all primary data on simulated NVM)",
        DurabilityConfig::nvm(1 << 30, nvm::LatencyModel::pcm()),
    )?;
    Ok(())
}
